#include "rpc/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace neptune {
namespace rpc {

namespace {

using ham::Context;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-method request counters, resolved once for all 256 method bytes
// so the per-request path never takes the registry lock. Unknown bytes
// all share the "rpc.request.unknown" counter.
Counter* MethodCounter(Method method) {
  static std::array<Counter*, 256>* counters = [] {
    auto* table = new std::array<Counter*, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = MetricsRegistry::Instance().GetCounter(
          std::string("rpc.request.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*counters)[static_cast<uint8_t>(method)];
}

// Per-method server span names ("rpc.server.openNode"), pre-interned
// for all 256 method bytes like MethodCounter above.
uint32_t ServerSpanNameId(Method method) {
  static std::array<uint32_t, 256>* names = [] {
    auto* table = new std::array<uint32_t, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = Tracer::Instance().InternName(
          std::string("rpc.server.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*names)[static_cast<uint8_t>(method)];
}

// Decode helpers that fail by returning false; the dispatcher turns
// that into a Corruption reply.
bool GetContext(std::string_view* in, Context* ctx) {
  return GetVarint64(in, &ctx->session);
}

bool GetString(std::string_view* in, std::string* out) {
  std::string_view s;
  if (!GetLengthPrefixed(in, &s)) return false;
  out->assign(s);
  return true;
}

bool GetBool(std::string_view* in, bool* out) {
  if (in->empty()) return false;
  *out = in->front() != 0;
  in->remove_prefix(1);
  return true;
}

bool GetEvent(std::string_view* in, ham::Event* out) {
  if (in->empty()) return false;
  *out = static_cast<ham::Event>(in->front());
  in->remove_prefix(1);
  return true;
}

std::string BadRequest(std::string_view what) {
  std::string reply;
  EncodeStatusTo(Status::Corruption("malformed request: " + std::string(what)),
                 &reply);
  return reply;
}

// Builds a reply from a Status-only operation.
std::string StatusReply(const Status& status) {
  std::string reply;
  EncodeStatusTo(status, &reply);
  return reply;
}

// Builds a reply from a Result<T> plus a result encoder.
template <typename T, typename Encoder>
std::string ResultReply(const Result<T>& result, Encoder encode) {
  std::string reply;
  EncodeStatusTo(result.ok() ? Status::OK() : result.status(), &reply);
  if (result.ok()) encode(*result, &reply);
  return reply;
}

}  // namespace

// ------------------------------------------------------------ sessions

void Server::SessionSet::Insert(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.insert(session);
}

void Server::SessionSet::Erase(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session);
}

std::vector<uint64_t> Server::SessionSet::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out(sessions_.begin(), sessions_.end());
  sessions_.clear();
  return out;
}

// -------------------------------------------------- connection + loop

// One connection, shared between its IO loop (reads, writes, lifetime)
// and the workers executing its requests (reply queueing, sessions).
// Fields below the mutex are guarded by it; `destroyed`/`read_closed`
// are only ever touched by the owning IO thread.
struct Server::Conn {
  Conn(int fd, IoLoop* loop) : fd(fd), loop(loop) {}
  ~Conn() { ::close(fd); }

  const int fd;
  IoLoop* const loop;
  FrameDecoder decoder;  // fed by the IO thread only
  SessionSet sessions;
  std::atomic<int64_t> last_active_us{0};
  // Requests decoded but not yet replied (includes the ordered
  // backlog). The IO loop only destroys a connection at zero.
  std::atomic<int> inflight{0};
  // Set when a worker must kill the connection but cannot touch the
  // poller (e.g. a reply that exceeds the frame limit).
  std::atomic<bool> kill{false};

  std::mutex mu;
  std::string outbuf;   // framed reply bytes not yet written
  size_t out_off = 0;   // bytes of outbuf already written
  bool ordered_busy = false;
  std::deque<Work> ordered_backlog;  // plain requests awaiting their turn

  // IO-thread-only state.
  bool read_closed = false;
  bool want_write = false;
  bool destroyed = false;
};

struct Server::IoLoop {
  std::unique_ptr<Poller> poller;
  int wake_r = -1;
  int wake_w = -1;
  bool has_listener = false;
  std::thread thread;

  std::mutex mu;  // guards conns, adds, flushes
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::vector<std::shared_ptr<Conn>> adds;
  std::vector<int> flushes;

  // True while a wake byte is in the pipe (or the loop is about to
  // re-check its queues): lets workers skip the write() syscall when
  // the loop is already scheduled to wake — under pipelined load that
  // is one syscall saved per reply.
  std::atomic<bool> wake_pending{false};

  ~IoLoop() {
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
  }

  void Wake() {
    if (wake_pending.exchange(true, std::memory_order_acq_rel)) return;
    char b = 1;
    ssize_t ignored = ::write(wake_w, &b, 1);  // EAGAIN = already pending
    (void)ignored;
  }
};

Server::Server(ham::HamInterface* ham, Options options)
    : ham_(ham), options_(options) {
  options_.io_threads = std::max(1, options_.io_threads);
  options_.worker_threads = std::max(1, options_.worker_threads);
}

Server::~Server() { Stop(); }

Result<uint16_t> Server::Start(uint16_t port) {
  // Pre-register the overload metrics so stats show the rows at zero.
  MetricsRegistry::Instance().GetGauge("server.inflight");
  MetricsRegistry::Instance().GetCounter("server.shed");
  MetricsRegistry::Instance().GetCounter("server.connections.reaped");
  MetricsRegistry::Instance().GetCounter("rpc.server.pipelined");
  MetricsRegistry::Instance().GetCounter("rpc.server.batch_items");
  NEPTUNE_ASSIGN_OR_RETURN(listener_, Listener::Bind(port));
  NEPTUNE_RETURN_IF_ERROR(listener_->SetNonblocking());
  port_ = listener_->port();

  for (int i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->poller = Poller::Create();
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      return Status::NetworkError(std::string("pipe: ") +
                                  std::strerror(errno));
    }
    for (int fd : {pipefd[0], pipefd[1]}) {
      const int fl = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    }
    loop->wake_r = pipefd[0];
    loop->wake_w = pipefd[1];
    NEPTUNE_RETURN_IF_ERROR(loop->poller->Add(loop->wake_r, false));
    if (i == 0) {
      loop->has_listener = true;
      NEPTUNE_RETURN_IF_ERROR(loop->poller->Add(listener_->fd(), false));
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    IoLoop* raw = loop.get();
    raw->thread = std::thread([this, raw] { IoLoopMain(raw); });
  }
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  NEPTUNE_LOG(Info) << "event=listening addr=127.0.0.1:" << port_
                    << " poller=" << loops_[0]->poller->name()
                    << " io_threads=" << options_.io_threads
                    << " workers=" << options_.worker_threads;
  return port_;
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  drain_deadline_us_.store(
      NowMicros() + static_cast<int64_t>(options_.drain_timeout_ms) * 1000);
  if (listener_ != nullptr) listener_->Shutdown();
  NEPTUNE_METRIC_COUNT("rpc.server.drains", 1);
  // The IO loops own the graceful drain: on waking they half-close
  // every connection (no new requests), keep flushing replies for work
  // already in flight, and exit once every connection is gone.
  for (auto& loop : loops_) loop->Wake();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // All requests are done and every disconnect-cleanup job is queued;
  // let the workers drain the queue, then stop them.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  loops_.clear();
}

void Server::EnqueueWork(Work work) {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_.push_back(std::move(work));
  }
  work_cv_.notify_one();
}

void Server::EnqueueWorkBatch(std::vector<Work>* works) {
  if (works->empty()) return;
  const bool several = works->size() > 1;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (Work& w : *works) work_queue_.push_back(std::move(w));
  }
  if (several) {
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
  works->clear();
}

void Server::WorkerMain() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock,
                    [this] { return workers_stop_ || !work_queue_.empty(); });
      if (work_queue_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      work = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    if (work.is_cleanup) {
      // A vanished client releases everything it held (crash recovery
      // for its open transaction happens via CloseGraph's abort path).
      for (uint64_t session : work.cleanup_sessions) {
        ham_->CloseGraph(Context{session});
      }
      continue;
    }
    ExecuteRequest(&work);
  }
}

bool Server::ShouldShed(Method method, int inflight) const {
  if (inflight <= options_.shed_inflight_requests) return false;
  // Always admitted: operations that shrink the server's obligations
  // (finishing or abandoning a transaction, closing a session) and the
  // two diagnostics an operator needs during an overload event.
  switch (method) {
    case Method::kCommitTransaction:
    case Method::kAbortTransaction:
    case Method::kCloseGraph:
    case Method::kPing:
    case Method::kGetServerStatistics:
    case Method::kGetRecentTraces:
    case Method::kGetSlowOps:
      return false;
    default:
      break;
  }
  if (inflight > options_.max_inflight_requests) return true;  // hard cap
  // Between the high-water mark and the cap: shed only the
  // non-transactional read traffic; writers keep their progress.
  return IsIdempotent(method);
}

void Server::ExecuteRequest(Work* work) {
  static Gauge* inflight_gauge =
      MetricsRegistry::Instance().GetGauge("server.inflight");
  const std::shared_ptr<Conn>& conn = work->conn;
  const std::string_view request =
      std::string_view(work->request).substr(work->request_off);
  const Method method =
      request.empty()
          ? Method{0}
          : static_cast<Method>(static_cast<uint8_t>(request.front()));
  std::string reply;
  {
    // Root span for this request's server-side work. It adopts the
    // client's context when one arrived, self-roots otherwise.
    ScopedSpan span(ServerSpanNameId(method), work->remote_ctx);
    const int inflight = inflight_.load(std::memory_order_relaxed);
    bool shed;
    {
      NEPTUNE_TRACE_SPAN(admission, "rpc.server.admission");
      shed = ShouldShed(method, inflight);
    }
    if (shed) {
      NEPTUNE_METRIC_COUNT("server.shed", 1);
      if (span.active()) {
        span.Annotate("shed=1 inflight=" + std::to_string(inflight));
      }
      // The request was refused before execution, so the client may
      // re-send ANY method safely; the varint after the status header
      // is the suggested backoff (RemoteHam honors it).
      EncodeStatusTo(Status::Unavailable("server overloaded (" +
                                         std::to_string(inflight) +
                                         " requests in flight); retry"),
                     &reply);
      PutVarint32(&reply, options_.retry_after_ms);
    } else {
      reply = HandleRequest(request, &conn->sessions);
    }
  }
  // Tagged replies echo the request id ahead of the status so the
  // pipelined client can match them out of order. The single wake
  // below (after the inflight decrement) covers the flush too.
  std::string id_prefix;
  if (work->tagged) PutVarint64(&id_prefix, work->request_id);
  QueueReply(conn, reply, id_prefix, /*notify=*/false);
  if (!work->tagged) {
    // Plain requests keep the historical in-order contract: the next
    // one for this connection runs only now that our reply is queued.
    Work next;
    bool have_next = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->ordered_backlog.empty()) {
        next = std::move(conn->ordered_backlog.front());
        conn->ordered_backlog.pop_front();
        next.conn = conn;
        have_next = true;
      } else {
        conn->ordered_busy = false;
      }
    }
    if (have_next) EnqueueWork(std::move(next));
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  inflight_gauge->Decrement();
  conn->inflight.fetch_sub(1, std::memory_order_release);
  // Re-wake the loop now that inflight is down: if the connection is
  // draining, this is what lets the IO thread finally destroy it.
  {
    std::lock_guard<std::mutex> lock(conn->loop->mu);
    conn->loop->flushes.push_back(conn->fd);
  }
  conn->loop->Wake();
}

void Server::QueueReply(const std::shared_ptr<Conn>& conn,
                        std::string_view payload, std::string_view id_prefix,
                        bool notify) {
  const size_t total = id_prefix.size() + payload.size();
  NEPTUNE_METRIC_COUNT("rpc.bytes_out", total);
  if (total > options_.max_frame_bytes) {
    // Mirrors FrameStream::SendFrame on the thread-per-connection
    // server: a reply that cannot be framed kills the connection.
    NEPTUNE_LOG(Warn) << "event=reply_overflow bytes=" << total
                      << " limit=" << options_.max_frame_bytes;
    conn->kill.store(true, std::memory_order_release);
  } else {
    std::lock_guard<std::mutex> lock(conn->mu);
    AppendFrame(id_prefix, payload, &conn->outbuf);
  }
  conn->last_active_us.store(NowMicros(), std::memory_order_relaxed);
  if (!notify) return;
  {
    std::lock_guard<std::mutex> lock(conn->loop->mu);
    conn->loop->flushes.push_back(conn->fd);
  }
  conn->loop->Wake();
}

// ----------------------------------------------------------- IO loops

void Server::IoLoopMain(IoLoop* loop) {
  std::vector<Poller::Event> events;
  bool drain_swept = false;
  int64_t next_reap_us =
      options_.idle_timeout_ms > 0
          ? NowMicros() + static_cast<int64_t>(options_.idle_timeout_ms) * 500
          : 0;
  for (;;) {
    // Adopt connections handed over by the accept path and flush
    // connections the workers have written replies for. The
    // wake_pending reset must come first: a Wake() that skipped its
    // write() did so before this reset, so its queue entry is already
    // visible to the swap below; one after the reset writes the pipe
    // and the next Wait() returns immediately.
    loop->wake_pending.store(false, std::memory_order_seq_cst);
    std::vector<std::shared_ptr<Conn>> adds;
    std::vector<int> flushes;
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      adds.swap(loop->adds);
      flushes.swap(loop->flushes);
    }
    for (auto& conn : adds) {
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        loop->conns[conn->fd] = conn;
      }
      if (!loop->poller->Add(conn->fd, false).ok()) {
        DestroyConn(loop, conn, /*discard_output=*/true);
      }
    }
    for (int fd : flushes) {
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        auto it = loop->conns.find(fd);
        if (it != loop->conns.end()) conn = it->second;
      }
      if (conn != nullptr) FlushConn(loop, conn);
    }

    if (stopping_.load(std::memory_order_acquire)) {
      std::vector<std::shared_ptr<Conn>> conns;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        conns.reserve(loop->conns.size());
        for (auto& [fd, c] : loop->conns) conns.push_back(c);
      }
      if (!drain_swept) {
        drain_swept = true;
        if (loop->has_listener) loop->poller->Remove(listener_->fd());
        // Half-close every connection: no request can arrive anymore,
        // but replies for requests already in flight still go out.
        for (auto& conn : conns) {
          if (!conn->read_closed) {
            conn->read_closed = true;
            ::shutdown(conn->fd, SHUT_RD);
          }
          MaybeDestroyConn(loop, conn);
        }
      } else if (NowMicros() >
                 drain_deadline_us_.load(std::memory_order_relaxed)) {
        // Peers that stopped reading do not get to hold Stop() hostage
        // past the drain budget; in-flight requests still finish.
        for (auto& conn : conns) {
          if (conn->inflight.load(std::memory_order_acquire) == 0) {
            DestroyConn(loop, conn, /*discard_output=*/true);
          }
        }
      }
      std::lock_guard<std::mutex> lock(loop->mu);
      if (loop->conns.empty()) break;
    }

    int timeout_ms = -1;
    if (stopping_.load(std::memory_order_relaxed)) {
      timeout_ms = 20;
    } else if (options_.idle_timeout_ms > 0) {
      timeout_ms = std::clamp(options_.idle_timeout_ms / 2, 10, 500);
    }
    auto waited = loop->poller->Wait(timeout_ms, &events);
    if (!waited.ok()) {
      NEPTUNE_LOG(Warn) << "event=poller_error detail=\""
                        << waited.status().message() << "\"";
      ::poll(nullptr, 0, 10);
      continue;
    }
    for (const Poller::Event& ev : events) {
      if (ev.fd == loop->wake_r) {
        char buf[256];
        while (::read(loop->wake_r, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (loop->has_listener && ev.fd == listener_->fd()) {
        if (!stopping_.load(std::memory_order_relaxed)) AcceptReady(loop);
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        auto it = loop->conns.find(ev.fd);
        if (it != loop->conns.end()) conn = it->second;
      }
      if (conn == nullptr) continue;
      if (conn->kill.load(std::memory_order_acquire)) {
        if (conn->inflight.load(std::memory_order_acquire) == 0) {
          DestroyConn(loop, conn, /*discard_output=*/true);
        }
        continue;
      }
      if (ev.writable) FlushConn(loop, conn);
      if (ev.readable || ev.error) ReadReady(loop, conn);
    }
    // Kill-flagged connections may have been marked by a worker rather
    // than an event; sweep them on flush notifications too.
    if (options_.idle_timeout_ms > 0 && NowMicros() >= next_reap_us) {
      ReapIdleConns(loop);
      next_reap_us =
          NowMicros() + static_cast<int64_t>(options_.idle_timeout_ms) * 500;
    }
  }
}

void Server::AcceptReady(IoLoop* loop) {
  static Gauge* active =
      MetricsRegistry::Instance().GetGauge("rpc.connections.active");
  for (;;) {
    auto accepted = listener_->AcceptFd();
    if (!accepted.ok()) return;  // would-block, exhaustion backoff, or stop
    IoLoop* target =
        loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
               loops_.size()]
            .get();
    auto conn = std::make_shared<Conn>(*accepted, target);
    const size_t buffered =
        options_.max_conn_buffered_bytes > 0
            ? options_.max_conn_buffered_bytes
            : static_cast<size_t>(options_.max_frame_bytes) + (64u << 10);
    conn->decoder.set_limits(options_.max_frame_bytes, buffered);
    conn->last_active_us.store(NowMicros(), std::memory_order_relaxed);
    NEPTUNE_METRIC_COUNT("rpc.connections.accepted", 1);
    active->Increment();
    if (target == loop) {
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        loop->conns[conn->fd] = conn;
      }
      if (!loop->poller->Add(conn->fd, false).ok()) {
        DestroyConn(loop, conn, /*discard_output=*/true);
      }
    } else {
      {
        std::lock_guard<std::mutex> lock(target->mu);
        target->adds.push_back(std::move(conn));
      }
      target->Wake();
    }
  }
}

void Server::ReadReady(IoLoop* loop, const std::shared_ptr<Conn>& conn) {
  if (conn->destroyed) return;
  char buf[1 << 16];
  size_t budget = 256u << 10;  // per-event fairness cap
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Hard transport error (ECONNRESET and friends): the peer is
      // gone, nothing we buffered can be delivered.
      conn->read_closed = true;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->out_off = conn->outbuf.size();
      }
      MaybeDestroyConn(loop, conn);
      return;
    }
    if (n == 0) {
      // EOF (peer closed, or our own drain half-close): no further
      // requests; finish what is in flight, flush, then destroy.
      conn->read_closed = true;
      MaybeDestroyConn(loop, conn);
      return;
    }
    conn->last_active_us.store(NowMicros(), std::memory_order_relaxed);
    if (conn->read_closed) {
      // Already poisoned (protocol error): discard whatever the peer
      // keeps sending so a level-triggered poller does not spin.
      continue;
    }
    std::vector<std::string> payloads;
    Status fed =
        conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)),
                           &payloads);
    std::vector<Work> ready;
    for (std::string& payload : payloads) {
      DispatchRequest(loop, conn, std::move(payload), &ready);
    }
    // One lock + one notify for everything this read produced.
    EnqueueWorkBatch(&ready);
    if (!fed.ok()) {
      // Protocol abuse (oversized length prefix, CRC mismatch): tell
      // the peer why before hanging up. Framing may be out of sync,
      // so the connection itself cannot survive.
      NEPTUNE_LOG(Warn) << "event=protocol_error code="
                        << StatusCodeToString(fed.code()) << " detail=\""
                        << fed.message() << "\"";
      conn->read_closed = true;
      ::shutdown(conn->fd, SHUT_RD);
      {
        std::string frame = FramePayload(StatusReply(fed));
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->outbuf.append(frame);
      }
      FlushConn(loop, conn);
      return;
    }
    if (budget <= static_cast<size_t>(n)) return;
    budget -= static_cast<size_t>(n);
  }
}

void Server::DispatchRequest(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                             std::string payload, std::vector<Work>* ready) {
  static Gauge* inflight_gauge =
      MetricsRegistry::Instance().GetGauge("server.inflight");
  NEPTUNE_METRIC_COUNT("rpc.bytes_in", payload.size());
  (void)loop;
  Work work;
  work.conn = conn;
  // Frame extensions: a flagged method byte is followed by the trace
  // context and/or a request id; strip them so HandleRequest sees the
  // plain encoding. A server configured like an older build answers
  // flagged requests exactly as one would: "unknown method <byte>".
  if (!payload.empty()) {
    uint8_t first = static_cast<uint8_t>(payload.front());
    std::string_view rest(payload);
    rest.remove_prefix(1);
    if ((first & kTraceContextFlag) != 0) {
      if (!options_.accept_trace_context) {
        QueueReply(conn, BadRequest("unknown method " + std::to_string(first)));
        return;
      }
      if (!DecodeTraceContextFrom(&rest, &work.remote_ctx)) {
        QueueReply(conn, BadRequest("trace context"));
        return;
      }
      first &= static_cast<uint8_t>(~kTraceContextFlag);
    }
    if ((first & kRequestIdFlag) != 0) {
      if (!options_.accept_request_ids) {
        QueueReply(conn, BadRequest("unknown method " + std::to_string(first)));
        return;
      }
      if (!GetVarint64(&rest, &work.request_id) || work.request_id == 0) {
        QueueReply(conn, BadRequest("request id"));
        return;
      }
      first &= static_cast<uint8_t>(~kRequestIdFlag);
      work.tagged = true;
      NEPTUNE_METRIC_COUNT("rpc.server.pipelined", 1);
    }
    if (first != static_cast<uint8_t>(payload.front())) {
      // Rewrite the plain method byte in place, directly in front of
      // the args — the extension bytes before it are dead, so the
      // payload needs no copy, just an offset.
      const size_t off = payload.size() - rest.size() - 1;
      payload[off] = static_cast<char>(first);
      work.request_off = off;
    }
  }
  work.request = std::move(payload);
  inflight_.fetch_add(1, std::memory_order_relaxed);
  inflight_gauge->Increment();
  conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  if (work.tagged) {
    // Tagged requests may complete out of order: dispatch freely.
    ready->push_back(std::move(work));
    return;
  }
  // Plain requests serialize per connection, preserving the historical
  // one-reply-per-request-in-order contract.
  bool dispatch_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->ordered_busy) {
      work.conn.reset();  // backlog entries must not own the Conn (cycle)
      conn->ordered_backlog.push_back(std::move(work));
    } else {
      conn->ordered_busy = true;
      dispatch_now = true;
    }
  }
  if (dispatch_now) ready->push_back(std::move(work));
}

void Server::FlushConn(IoLoop* loop, const std::shared_ptr<Conn>& conn) {
  if (conn->destroyed) return;
  if (conn->kill.load(std::memory_order_acquire)) {
    if (conn->inflight.load(std::memory_order_acquire) == 0) {
      DestroyConn(loop, conn, /*discard_output=*/true);
    }
    return;
  }
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (conn->out_off < conn->outbuf.size()) {
      ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                         conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn->want_write) {
            conn->want_write = true;
            loop->poller->Update(conn->fd, true);
          }
          return;
        }
        // Peer gone mid-write: nothing left to deliver.
        conn->out_off = conn->outbuf.size();
        dead = true;
        break;
      }
      conn->out_off += static_cast<size_t>(n);
    }
    conn->outbuf.clear();
    conn->out_off = 0;
    if (conn->want_write) {
      conn->want_write = false;
      loop->poller->Update(conn->fd, false);
    }
  }
  if (dead) conn->read_closed = true;
  MaybeDestroyConn(loop, conn);
}

void Server::MaybeDestroyConn(IoLoop* loop,
                              const std::shared_ptr<Conn>& conn) {
  if (conn->destroyed || !conn->read_closed) return;
  if (conn->inflight.load(std::memory_order_acquire) != 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->out_off < conn->outbuf.size()) return;  // still flushing
  }
  DestroyConn(loop, conn, /*discard_output=*/false);
}

void Server::DestroyConn(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                         bool discard_output) {
  if (conn->destroyed) return;
  conn->destroyed = true;
  static Gauge* active =
      MetricsRegistry::Instance().GetGauge("rpc.connections.active");
  if (discard_output) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->outbuf.clear();
    conn->out_off = 0;
  }
  loop->poller->Remove(conn->fd);
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->conns.erase(conn->fd);
  }
  active->Decrement();
  // Ensure the peer sees FIN promptly even while other references keep
  // the fd alive for a moment.
  ::shutdown(conn->fd, SHUT_RDWR);
  std::vector<uint64_t> sessions = conn->sessions.Drain();
  if (!sessions.empty()) {
    // Session teardown calls into the HAM (possibly aborting a
    // transaction); do it on a worker so one dead client cannot stall
    // every live connection on this loop.
    Work cleanup;
    cleanup.is_cleanup = true;
    cleanup.cleanup_sessions = std::move(sessions);
    EnqueueWork(std::move(cleanup));
  }
}

void Server::ReapIdleConns(IoLoop* loop) {
  const int64_t cutoff_us =
      NowMicros() - static_cast<int64_t>(options_.idle_timeout_ms) * 1000;
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    conns.reserve(loop->conns.size());
    for (auto& [fd, c] : loop->conns) conns.push_back(c);
  }
  for (auto& conn : conns) {
    if (conn->destroyed || conn->read_closed) continue;
    if (conn->inflight.load(std::memory_order_acquire) != 0) continue;
    if (conn->last_active_us.load(std::memory_order_relaxed) > cutoff_us) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->out_off < conn->outbuf.size()) continue;
    }
    // The connection sat silent past the idle budget: reap it.
    // Sessions (and any open transaction) are cleaned up exactly as
    // for a disconnect.
    NEPTUNE_METRIC_COUNT("server.connections.reaped", 1);
    NEPTUNE_LOG(Info) << "event=connection_reaped idle_ms="
                      << options_.idle_timeout_ms;
    DestroyConn(loop, conn, /*discard_output=*/false);
  }
}

std::string Server::HandleRequest(std::string_view in, SessionSet* sessions) {
  if (in.empty()) return BadRequest("empty");
  const Method method = static_cast<Method>(in.front());
  in.remove_prefix(1);
  NEPTUNE_METRIC_TIMED(timer, "rpc.request_latency");
  NEPTUNE_METRIC_COUNT("rpc.requests", 1);
  MethodCounter(method)->Increment();

  Context ctx;
  switch (method) {
    case Method::kPing: {
      std::string reply = StatusReply(Status::OK());
      reply.append(in);  // echo
      return reply;
    }

    case Method::kCreateGraph: {
      std::string directory;
      uint32_t protections = 0;
      if (!GetString(&in, &directory) || !GetVarint32(&in, &protections)) {
        return BadRequest("createGraph");
      }
      return ResultReply(ham_->CreateGraph(directory, protections),
                         [](const ham::CreateGraphResult& r, std::string* out) {
                           PutVarint64(out, r.project);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDestroyGraph: {
      uint64_t project = 0;
      std::string directory;
      if (!GetVarint64(&in, &project) || !GetString(&in, &directory)) {
        return BadRequest("destroyGraph");
      }
      return StatusReply(ham_->DestroyGraph(project, directory));
    }
    case Method::kOpenGraph: {
      uint64_t project = 0;
      std::string machine;
      std::string directory;
      if (!GetVarint64(&in, &project) || !GetString(&in, &machine) ||
          !GetString(&in, &directory)) {
        return BadRequest("openGraph");
      }
      Result<Context> opened = ham_->OpenGraph(project, machine, directory);
      if (opened.ok()) sessions->Insert(opened->session);
      return ResultReply(opened, [](const Context& c, std::string* out) {
        PutVarint64(out, c.session);
      });
    }
    case Method::kCloseGraph: {
      if (!GetContext(&in, &ctx)) return BadRequest("closeGraph");
      Status status = ham_->CloseGraph(ctx);
      if (status.ok()) sessions->Erase(ctx.session);
      return StatusReply(status);
    }

    case Method::kBeginTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("begin");
      return StatusReply(ham_->BeginTransaction(ctx));
    }
    case Method::kCommitTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("commit");
      return StatusReply(ham_->CommitTransaction(ctx));
    }
    case Method::kAbortTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("abort");
      return StatusReply(ham_->AbortTransaction(ctx));
    }

    case Method::kAddNode: {
      bool archive = false;
      if (!GetContext(&in, &ctx) || !GetBool(&in, &archive)) {
        return BadRequest("addNode");
      }
      return ResultReply(ham_->AddNode(ctx, archive),
                         [](const ham::AddNodeResult& r, std::string* out) {
                           PutVarint64(out, r.node);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDeleteNode: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("deleteNode");
      }
      return StatusReply(ham_->DeleteNode(ctx, node));
    }
    case Method::kAddLink: {
      ham::LinkPt from;
      ham::LinkPt to;
      if (!GetContext(&in, &ctx) || !DecodeLinkPtFrom(&in, &from) ||
          !DecodeLinkPtFrom(&in, &to)) {
        return BadRequest("addLink");
      }
      return ResultReply(ham_->AddLink(ctx, from, to),
                         [](const ham::AddLinkResult& r, std::string* out) {
                           PutVarint64(out, r.link);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kCopyLink: {
      uint64_t link = 0;
      uint64_t time = 0;
      bool copy_source = false;
      ham::LinkPt other;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link) ||
          !GetVarint64(&in, &time) || !GetBool(&in, &copy_source) ||
          !DecodeLinkPtFrom(&in, &other)) {
        return BadRequest("copyLink");
      }
      return ResultReply(ham_->CopyLink(ctx, link, time, copy_source, other),
                         [](const ham::AddLinkResult& r, std::string* out) {
                           PutVarint64(out, r.link);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDeleteLink: {
      uint64_t link = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link)) {
        return BadRequest("deleteLink");
      }
      return StatusReply(ham_->DeleteLink(ctx, link));
    }

    case Method::kLinearizeGraph:
    case Method::kGetGraphQuery: {
      uint64_t start = 0;
      uint64_t time = 0;
      std::string node_pred;
      std::string link_pred;
      std::vector<uint64_t> node_attrs;
      std::vector<uint64_t> link_attrs;
      if (!GetContext(&in, &ctx)) return BadRequest("query");
      if (method == Method::kLinearizeGraph && !GetVarint64(&in, &start)) {
        return BadRequest("linearize start");
      }
      if (!GetVarint64(&in, &time) || !GetString(&in, &node_pred) ||
          !GetString(&in, &link_pred) ||
          !DecodeIndexVecFrom(&in, &node_attrs) ||
          !DecodeIndexVecFrom(&in, &link_attrs)) {
        return BadRequest("query args");
      }
      Result<ham::SubGraph> result =
          method == Method::kLinearizeGraph
              ? ham_->LinearizeGraph(ctx, start, time, node_pred, link_pred,
                                     node_attrs, link_attrs)
              : ham_->GetGraphQuery(ctx, time, node_pred, link_pred,
                                    node_attrs, link_attrs);
      return ResultReply(result, EncodeSubGraphTo);
    }

    case Method::kGetGraphQueryExplained: {
      uint64_t time = 0;
      std::string node_pred;
      std::string link_pred;
      std::vector<uint64_t> node_attrs;
      std::vector<uint64_t> link_attrs;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time) ||
          !GetString(&in, &node_pred) || !GetString(&in, &link_pred) ||
          !DecodeIndexVecFrom(&in, &node_attrs) ||
          !DecodeIndexVecFrom(&in, &link_attrs) || in.empty()) {
        return BadRequest("query explain args");
      }
      const uint8_t flags = static_cast<uint8_t>(in.front());
      in.remove_prefix(1);
      ham::QueryOptions options;
      options.force_scan = (flags & 1) != 0;
      options.verify = (flags & 2) != 0;
      Result<ham::QueryExplain> result = ham_->GetGraphQueryExplained(
          ctx, time, node_pred, link_pred, node_attrs, link_attrs, options);
      return ResultReply(result, EncodeQueryExplainTo);
    }

    case Method::kOpenNode: {
      uint64_t node = 0;
      uint64_t time = 0;
      std::vector<uint64_t> attrs;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &time) || !DecodeIndexVecFrom(&in, &attrs)) {
        return BadRequest("openNode");
      }
      return ResultReply(ham_->OpenNode(ctx, node, time, attrs),
                         EncodeOpenNodeResultTo);
    }
    case Method::kModifyNode: {
      uint64_t node = 0;
      uint64_t expected = 0;
      std::string contents;
      std::vector<ham::AttachmentUpdate> attachments;
      std::string explanation;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &expected) || !GetString(&in, &contents) ||
          !DecodeAttachmentUpdatesFrom(&in, &attachments) ||
          !GetString(&in, &explanation)) {
        return BadRequest("modifyNode");
      }
      return StatusReply(ham_->ModifyNode(ctx, node, expected, contents,
                                          attachments, explanation));
    }
    case Method::kGetNodeTimeStamp: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("getNodeTimeStamp");
      }
      return ResultReply(ham_->GetNodeTimeStamp(ctx, node),
                         [](const ham::Time& t, std::string* out) {
                           PutVarint64(out, t);
                         });
    }
    case Method::kChangeNodeProtection: {
      uint64_t node = 0;
      uint32_t protections = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint32(&in, &protections)) {
        return BadRequest("changeNodeProtection");
      }
      return StatusReply(ham_->ChangeNodeProtection(ctx, node, protections));
    }
    case Method::kGetNodeVersions: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("getNodeVersions");
      }
      return ResultReply(ham_->GetNodeVersions(ctx, node),
                         EncodeNodeVersionsTo);
    }
    case Method::kGetNodeDifferences: {
      uint64_t node = 0;
      uint64_t t1 = 0;
      uint64_t t2 = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &t1) || !GetVarint64(&in, &t2)) {
        return BadRequest("getNodeDifferences");
      }
      return ResultReply(ham_->GetNodeDifferences(ctx, node, t1, t2),
                         EncodeDifferencesTo);
    }

    case Method::kGetToNode:
    case Method::kGetFromNode: {
      uint64_t link = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getEndNode");
      }
      Result<ham::LinkEndResult> result =
          method == Method::kGetToNode ? ham_->GetToNode(ctx, link, time)
                                       : ham_->GetFromNode(ctx, link, time);
      return ResultReply(result,
                         [](const ham::LinkEndResult& r, std::string* out) {
                           PutVarint64(out, r.node);
                           PutVarint64(out, r.version_time);
                         });
    }

    case Method::kGetAttributes: {
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time)) {
        return BadRequest("getAttributes");
      }
      return ResultReply(ham_->GetAttributes(ctx, time),
                         EncodeAttributeEntriesTo);
    }
    case Method::kGetAttributeValues: {
      uint64_t attr = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &attr) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getAttributeValues");
      }
      return ResultReply(ham_->GetAttributeValues(ctx, attr, time),
                         EncodeStringVecTo);
    }
    case Method::kGetAttributeIndex: {
      std::string name;
      if (!GetContext(&in, &ctx) || !GetString(&in, &name)) {
        return BadRequest("getAttributeIndex");
      }
      return ResultReply(ham_->GetAttributeIndex(ctx, name),
                         [](const ham::AttributeIndex& a, std::string* out) {
                           PutVarint64(out, a);
                         });
    }

    case Method::kSetNodeAttributeValue:
    case Method::kSetLinkAttributeValue: {
      uint64_t target = 0;
      uint64_t attr = 0;
      std::string value;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr) || !GetString(&in, &value)) {
        return BadRequest("setAttributeValue");
      }
      Status status =
          method == Method::kSetNodeAttributeValue
              ? ham_->SetNodeAttributeValue(ctx, target, attr, value)
              : ham_->SetLinkAttributeValue(ctx, target, attr, value);
      return StatusReply(status);
    }
    case Method::kDeleteNodeAttribute:
    case Method::kDeleteLinkAttribute: {
      uint64_t target = 0;
      uint64_t attr = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr)) {
        return BadRequest("deleteAttribute");
      }
      Status status = method == Method::kDeleteNodeAttribute
                          ? ham_->DeleteNodeAttribute(ctx, target, attr)
                          : ham_->DeleteLinkAttribute(ctx, target, attr);
      return StatusReply(status);
    }
    case Method::kGetNodeAttributeValue:
    case Method::kGetLinkAttributeValue: {
      uint64_t target = 0;
      uint64_t attr = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr) || !GetVarint64(&in, &time)) {
        return BadRequest("getAttributeValue");
      }
      Result<std::string> result =
          method == Method::kGetNodeAttributeValue
              ? ham_->GetNodeAttributeValue(ctx, target, attr, time)
              : ham_->GetLinkAttributeValue(ctx, target, attr, time);
      return ResultReply(result, [](const std::string& v, std::string* out) {
        PutLengthPrefixed(out, v);
      });
    }
    case Method::kGetNodeAttributes:
    case Method::kGetLinkAttributes: {
      uint64_t target = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getAttributes(node/link)");
      }
      Result<std::vector<ham::AttributeValueEntry>> result =
          method == Method::kGetNodeAttributes
              ? ham_->GetNodeAttributes(ctx, target, time)
              : ham_->GetLinkAttributes(ctx, target, time);
      return ResultReply(result, EncodeAttributeValueEntriesTo);
    }

    case Method::kSetGraphDemonValue: {
      ham::Event event;
      std::string demon;
      if (!GetContext(&in, &ctx) || !GetEvent(&in, &event) ||
          !GetString(&in, &demon)) {
        return BadRequest("setGraphDemonValue");
      }
      return StatusReply(ham_->SetGraphDemonValue(ctx, event, demon));
    }
    case Method::kGetGraphDemons: {
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time)) {
        return BadRequest("getGraphDemons");
      }
      return ResultReply(ham_->GetGraphDemons(ctx, time), EncodeDemonEntriesTo);
    }
    case Method::kSetNodeDemon: {
      uint64_t node = 0;
      ham::Event event;
      std::string demon;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetEvent(&in, &event) || !GetString(&in, &demon)) {
        return BadRequest("setNodeDemon");
      }
      return StatusReply(ham_->SetNodeDemon(ctx, node, event, demon));
    }
    case Method::kGetNodeDemons: {
      uint64_t node = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getNodeDemons");
      }
      return ResultReply(ham_->GetNodeDemons(ctx, node, time),
                         EncodeDemonEntriesTo);
    }

    case Method::kCreateContext: {
      std::string name;
      if (!GetContext(&in, &ctx) || !GetString(&in, &name)) {
        return BadRequest("createContext");
      }
      return ResultReply(ham_->CreateContext(ctx, name),
                         [](const ham::ContextInfo& info, std::string* out) {
                           PutVarint64(out, info.thread);
                           PutLengthPrefixed(out, info.name);
                           PutVarint64(out, info.branched_at);
                         });
    }
    case Method::kOpenContext: {
      uint64_t thread = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &thread)) {
        return BadRequest("openContext");
      }
      Result<Context> opened = ham_->OpenContext(ctx, thread);
      if (opened.ok()) sessions->Insert(opened->session);
      return ResultReply(opened, [](const Context& c, std::string* out) {
        PutVarint64(out, c.session);
      });
    }
    case Method::kMergeContext: {
      uint64_t source = 0;
      bool force = false;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &source) ||
          !GetBool(&in, &force)) {
        return BadRequest("mergeContext");
      }
      return StatusReply(ham_->MergeContext(ctx, source, force));
    }
    case Method::kListContexts: {
      if (!GetContext(&in, &ctx)) return BadRequest("listContexts");
      return ResultReply(ham_->ListContexts(ctx), EncodeContextInfosTo);
    }

    case Method::kCheckpoint: {
      if (!GetContext(&in, &ctx)) return BadRequest("checkpoint");
      return StatusReply(ham_->Checkpoint(ctx));
    }
    case Method::kGetStats: {
      if (!GetContext(&in, &ctx)) return BadRequest("getStats");
      return ResultReply(ham_->GetStats(ctx), EncodeStatsTo);
    }
    case Method::kContextThread: {
      if (!GetContext(&in, &ctx)) return BadRequest("contextThread");
      return ResultReply(ham_->ContextThread(ctx),
                         [](const ham::ThreadId& t, std::string* out) {
                           PutVarint64(out, t);
                         });
    }

    case Method::kGetServerStatistics: {
      // Server-wide, so no Context: any client may ask, even before it
      // has opened a graph.
      std::string reply = StatusReply(Status::OK());
      MetricsRegistry::Instance().Snapshot().EncodeTo(&reply);
      return reply;
    }
    case Method::kGetRecentTraces: {
      // Server-wide like getServerStatistics.
      std::string reply = StatusReply(Status::OK());
      EncodeTracesTo(Tracer::Instance().RecentTraces(), &reply);
      return reply;
    }
    case Method::kGetSlowOps: {
      std::string reply = StatusReply(Status::OK());
      EncodeSpansTo(Tracer::Instance().SlowOps(), &reply);
      return reply;
    }

    case Method::kOpenNodes: {
      // Batch openNode: one round trip, per-item status — one missing
      // node must not fail its siblings.
      uint64_t time = 0;
      std::vector<uint64_t> attrs;
      std::vector<uint64_t> nodes;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time) ||
          !DecodeIndexVecFrom(&in, &attrs) ||
          !DecodeIndexVecFrom(&in, &nodes)) {
        return BadRequest("openNodes");
      }
      NEPTUNE_METRIC_COUNT("rpc.server.batch_items", nodes.size());
      std::string reply = StatusReply(Status::OK());
      PutVarint64(&reply, nodes.size());
      for (uint64_t node : nodes) {
        Result<ham::OpenNodeResult> r = ham_->OpenNode(ctx, node, time, attrs);
        EncodeStatusTo(r.ok() ? Status::OK() : r.status(), &reply);
        if (r.ok()) EncodeOpenNodeResultTo(*r, &reply);
      }
      return reply;
    }
    case Method::kGetAttributeValuesBatch: {
      // Batch attribute read over mixed node/link targets:
      //   ctx | time | count | { u8 is_link | entity | attr }*
      // Reply: count | { status | value-if-ok }*
      uint64_t time = 0;
      uint64_t count = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time) ||
          !GetVarint64(&in, &count) || count > in.size()) {
        return BadRequest("getAttributeValuesBatch");
      }
      NEPTUNE_METRIC_COUNT("rpc.server.batch_items", count);
      std::string reply = StatusReply(Status::OK());
      PutVarint64(&reply, count);
      for (uint64_t i = 0; i < count; ++i) {
        bool is_link = false;
        uint64_t entity = 0;
        uint64_t attr = 0;
        if (!GetBool(&in, &is_link) || !GetVarint64(&in, &entity) ||
            !GetVarint64(&in, &attr)) {
          return BadRequest("getAttributeValuesBatch item");
        }
        Result<std::string> r =
            is_link ? ham_->GetLinkAttributeValue(ctx, entity, attr, time)
                    : ham_->GetNodeAttributeValue(ctx, entity, attr, time);
        EncodeStatusTo(r.ok() ? Status::OK() : r.status(), &reply);
        if (r.ok()) PutLengthPrefixed(&reply, *r);
      }
      return reply;
    }
    case Method::kLinearizeAndFetch: {
      // linearizeGraph plus the contents of every node it returns, in
      // one round trip — the SubGraph carries structure and attributes
      // but not contents, so a browser prefetching a document would
      // otherwise pay one openNode round trip per node.
      uint64_t start = 0;
      uint64_t time = 0;
      std::string node_pred;
      std::string link_pred;
      std::vector<uint64_t> node_attrs;
      std::vector<uint64_t> link_attrs;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &start) ||
          !GetVarint64(&in, &time) || !GetString(&in, &node_pred) ||
          !GetString(&in, &link_pred) ||
          !DecodeIndexVecFrom(&in, &node_attrs) ||
          !DecodeIndexVecFrom(&in, &link_attrs)) {
        return BadRequest("linearizeAndFetch");
      }
      Result<ham::SubGraph> graph = ham_->LinearizeGraph(
          ctx, start, time, node_pred, link_pred, node_attrs, link_attrs);
      if (!graph.ok()) return StatusReply(graph.status());
      NEPTUNE_METRIC_COUNT("rpc.server.batch_items", graph->nodes.size());
      std::string reply = StatusReply(Status::OK());
      EncodeSubGraphTo(*graph, &reply);
      PutVarint64(&reply, graph->nodes.size());
      for (const ham::SubGraphNode& n : graph->nodes) {
        Result<ham::OpenNodeResult> r = ham_->OpenNode(ctx, n.node, time, {});
        EncodeStatusTo(r.ok() ? Status::OK() : r.status(), &reply);
        if (r.ok()) {
          PutLengthPrefixed(&reply, r->contents);
          PutVarint64(&reply, r->current_version_time);
        }
      }
      return reply;
    }

    case Method::kReplFetch: {
      // No Context: the follower's replicator is not a graph session.
      ham::ReplFetchRequest request;
      if (!DecodeReplFetchRequestFrom(&in, &request)) {
        return BadRequest("replFetch");
      }
      return ResultReply(ham_->ReplFetch(request), EncodeReplFetchResultTo);
    }
    case Method::kReplStatus: {
      std::string directory;
      if (!GetString(&in, &directory)) return BadRequest("replStatus");
      return ResultReply(ham_->ReplStatus(directory), EncodeReplNodeStatusTo);
    }
    case Method::kReplListGraphs: {
      std::string root;
      if (!GetString(&in, &root)) return BadRequest("replListGraphs");
      return ResultReply(ham_->ReplListGraphs(root), EncodeStringVecTo);
    }
    case Method::kReplPromote: {
      return ResultReply(ham_->Promote(),
                         [](const uint64_t& term, std::string* out) {
                           PutVarint64(out, term);
                         });
    }
  }
  return BadRequest("unknown method " +
                    std::to_string(static_cast<int>(method)));
}

}  // namespace rpc
}  // namespace neptune

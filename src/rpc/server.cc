#include "rpc/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "obs/preregister.h"

namespace neptune {
namespace rpc {

namespace {

using ham::Context;

// Per-method server span names ("rpc.server.openNode"), pre-interned
// for all 256 method bytes so the per-request path never takes the
// tracer lock.
uint32_t ServerSpanNameId(Method method) {
  static std::array<uint32_t, 256>* names = [] {
    auto* table = new std::array<uint32_t, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = Tracer::Instance().InternName(
          std::string("rpc.server.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*names)[static_cast<uint8_t>(method)];
}

}  // namespace

// -------------------------------------------------- connection + loop

// One connection, shared between its IO loop (reads, writes, lifetime)
// and the workers executing its requests (reply queueing, sessions).
// Fields below the mutex are guarded by it; `destroyed`/`read_closed`
// are only ever touched by the owning IO thread.
struct Server::Conn {
  Conn(int fd, IoLoop* loop) : fd(fd), loop(loop) {}
  ~Conn() { ::close(fd); }

  const int fd;
  IoLoop* const loop;
  FrameDecoder decoder;  // fed by the IO thread only
  SessionSet sessions;
  std::atomic<int64_t> last_active_us{0};
  // Requests decoded but not yet replied (includes the ordered
  // backlog). The IO loop only destroys a connection at zero.
  std::atomic<int> inflight{0};
  // Set when a worker must kill the connection but cannot touch the
  // poller (e.g. a reply that exceeds the frame limit).
  std::atomic<bool> kill{false};

  std::mutex mu;
  std::string outbuf;   // framed reply bytes not yet written
  size_t out_off = 0;   // bytes of outbuf already written
  bool ordered_busy = false;
  std::deque<Work> ordered_backlog;  // plain requests awaiting their turn

  // IO-thread-only state.
  bool read_closed = false;
  bool want_write = false;
  bool destroyed = false;
};

struct Server::IoLoop {
  std::unique_ptr<Poller> poller;
  int wake_r = -1;
  int wake_w = -1;
  bool has_listener = false;
  std::thread thread;

  std::mutex mu;  // guards conns, adds, flushes
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::vector<std::shared_ptr<Conn>> adds;
  std::vector<int> flushes;

  // True while a wake byte is in the pipe (or the loop is about to
  // re-check its queues): lets workers skip the write() syscall when
  // the loop is already scheduled to wake — under pipelined load that
  // is one syscall saved per reply.
  std::atomic<bool> wake_pending{false};

  ~IoLoop() {
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
  }

  void Wake() {
    if (wake_pending.exchange(true, std::memory_order_acq_rel)) return;
    char b = 1;
    ssize_t ignored = ::write(wake_w, &b, 1);  // EAGAIN = already pending
    (void)ignored;
  }
};

Server::Server(ham::HamInterface* ham, Options options)
    : ham_(ham), options_(options), dispatcher_(ham) {
  options_.io_threads = std::max(1, options_.io_threads);
  options_.worker_threads = std::max(1, options_.worker_threads);
  time_ = options_.time_source != nullptr ? options_.time_source
                                          : RealTimeSource();
}

Server::~Server() { Stop(); }

int64_t Server::Now() const { return static_cast<int64_t>(time_->NowMicros()); }

Result<uint16_t> Server::Start(uint16_t port) {
  // Pre-register the full server-plane taxonomy so stats and /metrics
  // show every row at zero before its first bump.
  obs::PreregisterServerMetrics();
  NEPTUNE_ASSIGN_OR_RETURN(listener_, Listener::Bind(port));
  NEPTUNE_RETURN_IF_ERROR(listener_->SetNonblocking());
  port_ = listener_->port();

  for (int i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->poller = Poller::Create();
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      return Status::NetworkError(std::string("pipe: ") +
                                  std::strerror(errno));
    }
    for (int fd : {pipefd[0], pipefd[1]}) {
      const int fl = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    }
    loop->wake_r = pipefd[0];
    loop->wake_w = pipefd[1];
    NEPTUNE_RETURN_IF_ERROR(loop->poller->Add(loop->wake_r, false));
    if (i == 0) {
      loop->has_listener = true;
      NEPTUNE_RETURN_IF_ERROR(loop->poller->Add(listener_->fd(), false));
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    IoLoop* raw = loop.get();
    raw->thread = std::thread([this, raw] { IoLoopMain(raw); });
  }
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  NEPTUNE_LOG(Info) << "event=listening addr=127.0.0.1:" << port_
                    << " poller=" << loops_[0]->poller->name()
                    << " io_threads=" << options_.io_threads
                    << " workers=" << options_.worker_threads;
  return port_;
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  drain_deadline_us_.store(
      Now() + static_cast<int64_t>(options_.drain_timeout_ms) * 1000);
  if (listener_ != nullptr) listener_->Shutdown();
  NEPTUNE_METRIC_COUNT("rpc.server.drains", 1);
  // The IO loops own the graceful drain: on waking they half-close
  // every connection (no new requests), keep flushing replies for work
  // already in flight, and exit once every connection is gone.
  for (auto& loop : loops_) loop->Wake();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // All requests are done and every disconnect-cleanup job is queued;
  // let the workers drain the queue, then stop them.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  loops_.clear();
}

namespace {

// Event-loop health gauges (see docs/OBSERVABILITY.md): queue depth is
// work decoded but not yet picked up by a worker, outbuf bytes are
// framed replies not yet written to any socket, ordered backlog is
// plain requests serialized behind an executing one.
Gauge* QueueDepthGauge() {
  static Gauge* g = MetricsRegistry::Instance().GetGauge("server.queue.depth");
  return g;
}

Gauge* OutbufBytesGauge() {
  static Gauge* g =
      MetricsRegistry::Instance().GetGauge("server.outbuf_bytes");
  return g;
}

Gauge* OrderedBacklogGauge() {
  static Gauge* g =
      MetricsRegistry::Instance().GetGauge("server.ordered_backlog");
  return g;
}

}  // namespace

void Server::EnqueueWork(Work work) {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    // A non-empty queue means every worker is already busy: new work
    // waits, which is the saturation signal an operator sizes the pool
    // by.
    if (!work_queue_.empty()) {
      NEPTUNE_METRIC_COUNT("server.workers.saturated", 1);
    }
    work_queue_.push_back(std::move(work));
    QueueDepthGauge()->Set(static_cast<int64_t>(work_queue_.size()));
  }
  work_cv_.notify_one();
}

void Server::EnqueueWorkBatch(std::vector<Work>* works) {
  if (works->empty()) return;
  const bool several = works->size() > 1;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    if (!work_queue_.empty()) {
      NEPTUNE_METRIC_COUNT("server.workers.saturated", 1);
    }
    for (Work& w : *works) work_queue_.push_back(std::move(w));
    QueueDepthGauge()->Set(static_cast<int64_t>(work_queue_.size()));
  }
  if (several) {
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
  works->clear();
}

void Server::WorkerMain() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock,
                    [this] { return workers_stop_ || !work_queue_.empty(); });
      if (work_queue_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      work = std::move(work_queue_.front());
      work_queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<int64_t>(work_queue_.size()));
    }
    if (work.is_cleanup) {
      // A vanished client releases everything it held (crash recovery
      // for its open transaction happens via CloseGraph's abort path).
      for (uint64_t session : work.cleanup_sessions) {
        ham_->CloseGraph(Context{session});
      }
      continue;
    }
    ExecuteRequest(&work);
  }
}

void Server::ExecuteRequest(Work* work) {
  static Gauge* inflight_gauge =
      MetricsRegistry::Instance().GetGauge("server.inflight");
  const std::shared_ptr<Conn>& conn = work->conn;
  const std::string_view request =
      std::string_view(work->request).substr(work->request_off);
  const Method method =
      request.empty()
          ? Method{0}
          : static_cast<Method>(static_cast<uint8_t>(request.front()));
  std::string reply;
  {
    // Root span for this request's server-side work. It adopts the
    // client's context when one arrived, self-roots otherwise.
    ScopedSpan span(ServerSpanNameId(method), work->remote_ctx);
    const int inflight = inflight_.load(std::memory_order_relaxed);
    const AdmissionOptions admission{options_.max_inflight_requests,
                                     options_.shed_inflight_requests};
    bool shed;
    {
      NEPTUNE_TRACE_SPAN(admission_span, "rpc.server.admission");
      shed = ShouldShed(method, inflight, admission);
    }
    if (shed) {
      NEPTUNE_METRIC_COUNT("server.shed", 1);
      if (span.active()) {
        span.Annotate("shed=1 inflight=" + std::to_string(inflight));
      }
      reply = ShedReply(inflight, options_.retry_after_ms);
    } else {
      reply = dispatcher_.Handle(request, &conn->sessions);
    }
  }
  // Tagged replies echo the request id ahead of the status so the
  // pipelined client can match them out of order. The single wake
  // below (after the inflight decrement) covers the flush too.
  std::string id_prefix;
  if (work->tagged) PutVarint64(&id_prefix, work->request_id);
  QueueReply(conn, reply, id_prefix, /*notify=*/false);
  if (!work->tagged) {
    // Plain requests keep the historical in-order contract: the next
    // one for this connection runs only now that our reply is queued.
    Work next;
    bool have_next = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->ordered_backlog.empty()) {
        next = std::move(conn->ordered_backlog.front());
        conn->ordered_backlog.pop_front();
        OrderedBacklogGauge()->Decrement();
        next.conn = conn;
        have_next = true;
      } else {
        conn->ordered_busy = false;
      }
    }
    if (have_next) EnqueueWork(std::move(next));
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  inflight_gauge->Decrement();
  conn->inflight.fetch_sub(1, std::memory_order_release);
  // Re-wake the loop now that inflight is down: if the connection is
  // draining, this is what lets the IO thread finally destroy it.
  {
    std::lock_guard<std::mutex> lock(conn->loop->mu);
    conn->loop->flushes.push_back(conn->fd);
  }
  conn->loop->Wake();
}

void Server::QueueReply(const std::shared_ptr<Conn>& conn,
                        std::string_view payload, std::string_view id_prefix,
                        bool notify) {
  const size_t total = id_prefix.size() + payload.size();
  NEPTUNE_METRIC_COUNT("rpc.bytes_out", total);
  if (total > options_.max_frame_bytes) {
    // Mirrors FrameStream::SendFrame on the thread-per-connection
    // server: a reply that cannot be framed kills the connection.
    NEPTUNE_LOG(Warn) << "event=reply_overflow bytes=" << total
                      << " limit=" << options_.max_frame_bytes;
    conn->kill.store(true, std::memory_order_release);
  } else {
    std::lock_guard<std::mutex> lock(conn->mu);
    const size_t before = conn->outbuf.size();
    AppendFrame(id_prefix, payload, &conn->outbuf);
    OutbufBytesGauge()->Add(static_cast<int64_t>(conn->outbuf.size() - before));
  }
  conn->last_active_us.store(Now(), std::memory_order_relaxed);
  if (!notify) return;
  {
    std::lock_guard<std::mutex> lock(conn->loop->mu);
    conn->loop->flushes.push_back(conn->fd);
  }
  conn->loop->Wake();
}

// ----------------------------------------------------------- IO loops

void Server::IoLoopMain(IoLoop* loop) {
  // Loop lag: time this IO thread spends *outside* Wait() per
  // iteration — the window during which a ready socket cannot be
  // served. Sustained growth means the loop (not the workers) is the
  // bottleneck. Recorded per IO loop into one shared family.
  static Histogram* loop_lag =
      MetricsRegistry::Instance().GetHistogram("server.loop.lag_us");
  int64_t busy_since_us = 0;
  std::vector<Poller::Event> events;
  bool drain_swept = false;
  int64_t next_reap_us =
      options_.idle_timeout_ms > 0
          ? Now() + static_cast<int64_t>(options_.idle_timeout_ms) * 500
          : 0;
  for (;;) {
    // Adopt connections handed over by the accept path and flush
    // connections the workers have written replies for. The
    // wake_pending reset must come first: a Wake() that skipped its
    // write() did so before this reset, so its queue entry is already
    // visible to the swap below; one after the reset writes the pipe
    // and the next Wait() returns immediately.
    loop->wake_pending.store(false, std::memory_order_seq_cst);
    std::vector<std::shared_ptr<Conn>> adds;
    std::vector<int> flushes;
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      adds.swap(loop->adds);
      flushes.swap(loop->flushes);
    }
    for (auto& conn : adds) {
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        loop->conns[conn->fd] = conn;
      }
      if (!loop->poller->Add(conn->fd, false).ok()) {
        DestroyConn(loop, conn, /*discard_output=*/true);
      }
    }
    for (int fd : flushes) {
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        auto it = loop->conns.find(fd);
        if (it != loop->conns.end()) conn = it->second;
      }
      if (conn != nullptr) FlushConn(loop, conn);
    }

    if (stopping_.load(std::memory_order_acquire)) {
      std::vector<std::shared_ptr<Conn>> conns;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        conns.reserve(loop->conns.size());
        for (auto& [fd, c] : loop->conns) conns.push_back(c);
      }
      if (!drain_swept) {
        drain_swept = true;
        if (loop->has_listener) loop->poller->Remove(listener_->fd());
        // Half-close every connection: no request can arrive anymore,
        // but replies for requests already in flight still go out.
        for (auto& conn : conns) {
          if (!conn->read_closed) {
            conn->read_closed = true;
            ::shutdown(conn->fd, SHUT_RD);
          }
          MaybeDestroyConn(loop, conn);
        }
      } else if (Now() >
                 drain_deadline_us_.load(std::memory_order_relaxed)) {
        // Peers that stopped reading do not get to hold Stop() hostage
        // past the drain budget; in-flight requests still finish.
        for (auto& conn : conns) {
          if (conn->inflight.load(std::memory_order_acquire) == 0) {
            DestroyConn(loop, conn, /*discard_output=*/true);
          }
        }
      }
      std::lock_guard<std::mutex> lock(loop->mu);
      if (loop->conns.empty()) break;
    }

    int timeout_ms = -1;
    if (stopping_.load(std::memory_order_relaxed)) {
      timeout_ms = 20;
    } else if (options_.idle_timeout_ms > 0) {
      timeout_ms = std::clamp(options_.idle_timeout_ms / 2, 10, 500);
    }
    if (busy_since_us != 0) {
      const int64_t busy = Now() - busy_since_us;
      if (busy >= 0) loop_lag->Record(static_cast<uint64_t>(busy));
    }
    auto waited = loop->poller->Wait(timeout_ms, &events);
    busy_since_us = Now();
    if (!waited.ok()) {
      NEPTUNE_LOG(Warn) << "event=poller_error detail=\""
                        << waited.status().message() << "\"";
      ::poll(nullptr, 0, 10);
      continue;
    }
    for (const Poller::Event& ev : events) {
      if (ev.fd == loop->wake_r) {
        char buf[256];
        while (::read(loop->wake_r, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (loop->has_listener && ev.fd == listener_->fd()) {
        if (!stopping_.load(std::memory_order_relaxed)) AcceptReady(loop);
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        auto it = loop->conns.find(ev.fd);
        if (it != loop->conns.end()) conn = it->second;
      }
      if (conn == nullptr) continue;
      if (conn->kill.load(std::memory_order_acquire)) {
        if (conn->inflight.load(std::memory_order_acquire) == 0) {
          DestroyConn(loop, conn, /*discard_output=*/true);
        }
        continue;
      }
      if (ev.writable) FlushConn(loop, conn);
      if (ev.readable || ev.error) ReadReady(loop, conn);
    }
    // Kill-flagged connections may have been marked by a worker rather
    // than an event; sweep them on flush notifications too.
    if (options_.idle_timeout_ms > 0 && Now() >= next_reap_us) {
      ReapIdleConns(loop);
      next_reap_us =
          Now() + static_cast<int64_t>(options_.idle_timeout_ms) * 500;
    }
  }
}

void Server::AcceptReady(IoLoop* loop) {
  static Gauge* active =
      MetricsRegistry::Instance().GetGauge("rpc.connections.active");
  for (;;) {
    auto accepted = listener_->AcceptFd();
    if (!accepted.ok()) return;  // would-block, exhaustion backoff, or stop
    IoLoop* target =
        loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
               loops_.size()]
            .get();
    auto conn = std::make_shared<Conn>(*accepted, target);
    const size_t buffered =
        options_.max_conn_buffered_bytes > 0
            ? options_.max_conn_buffered_bytes
            : static_cast<size_t>(options_.max_frame_bytes) + (64u << 10);
    conn->decoder.set_limits(options_.max_frame_bytes, buffered);
    conn->last_active_us.store(Now(), std::memory_order_relaxed);
    NEPTUNE_METRIC_COUNT("rpc.connections.accepted", 1);
    active->Increment();
    if (target == loop) {
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        loop->conns[conn->fd] = conn;
      }
      if (!loop->poller->Add(conn->fd, false).ok()) {
        DestroyConn(loop, conn, /*discard_output=*/true);
      }
    } else {
      {
        std::lock_guard<std::mutex> lock(target->mu);
        target->adds.push_back(std::move(conn));
      }
      target->Wake();
    }
  }
}

void Server::ReadReady(IoLoop* loop, const std::shared_ptr<Conn>& conn) {
  if (conn->destroyed) return;
  char buf[1 << 16];
  size_t budget = 256u << 10;  // per-event fairness cap
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Hard transport error (ECONNRESET and friends): the peer is
      // gone, nothing we buffered can be delivered.
      conn->read_closed = true;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        OutbufBytesGauge()->Add(
            -static_cast<int64_t>(conn->outbuf.size() - conn->out_off));
        conn->out_off = conn->outbuf.size();
      }
      MaybeDestroyConn(loop, conn);
      return;
    }
    if (n == 0) {
      // EOF (peer closed, or our own drain half-close): no further
      // requests; finish what is in flight, flush, then destroy.
      conn->read_closed = true;
      MaybeDestroyConn(loop, conn);
      return;
    }
    conn->last_active_us.store(Now(), std::memory_order_relaxed);
    if (conn->read_closed) {
      // Already poisoned (protocol error): discard whatever the peer
      // keeps sending so a level-triggered poller does not spin.
      continue;
    }
    std::vector<std::string> payloads;
    Status fed =
        conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)),
                           &payloads);
    std::vector<Work> ready;
    for (std::string& payload : payloads) {
      DispatchRequest(loop, conn, std::move(payload), &ready);
    }
    // One lock + one notify for everything this read produced.
    EnqueueWorkBatch(&ready);
    if (!fed.ok()) {
      // Protocol abuse (oversized length prefix, CRC mismatch): tell
      // the peer why before hanging up. Framing may be out of sync,
      // so the connection itself cannot survive.
      NEPTUNE_LOG(Warn) << "event=protocol_error code="
                        << StatusCodeToString(fed.code()) << " detail=\""
                        << fed.message() << "\"";
      conn->read_closed = true;
      ::shutdown(conn->fd, SHUT_RD);
      {
        std::string frame = FramePayload(StatusReply(fed));
        std::lock_guard<std::mutex> lock(conn->mu);
        OutbufBytesGauge()->Add(static_cast<int64_t>(frame.size()));
        conn->outbuf.append(frame);
      }
      FlushConn(loop, conn);
      return;
    }
    if (budget <= static_cast<size_t>(n)) return;
    budget -= static_cast<size_t>(n);
  }
}

void Server::DispatchRequest(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                             std::string payload, std::vector<Work>* ready) {
  static Gauge* inflight_gauge =
      MetricsRegistry::Instance().GetGauge("server.inflight");
  NEPTUNE_METRIC_COUNT("rpc.bytes_in", payload.size());
  (void)loop;
  Work work;
  work.conn = conn;
  // Frame extensions (trace context, request id) are parsed by the
  // shared envelope logic in rpc/dispatch.h.
  RequestEnvelope envelope;
  std::string error_reply;
  if (!ParseRequestEnvelope(std::move(payload), options_.accept_trace_context,
                            options_.accept_request_ids, &envelope,
                            &error_reply)) {
    QueueReply(conn, error_reply);
    return;
  }
  work.request = std::move(envelope.payload);
  work.request_off = envelope.offset;
  work.tagged = envelope.tagged;
  work.request_id = envelope.request_id;
  work.remote_ctx = envelope.remote_ctx;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  inflight_gauge->Increment();
  conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  if (work.tagged) {
    // Tagged requests may complete out of order: dispatch freely.
    ready->push_back(std::move(work));
    return;
  }
  // Plain requests serialize per connection, preserving the historical
  // one-reply-per-request-in-order contract.
  bool dispatch_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->ordered_busy) {
      work.conn.reset();  // backlog entries must not own the Conn (cycle)
      conn->ordered_backlog.push_back(std::move(work));
      OrderedBacklogGauge()->Increment();
    } else {
      conn->ordered_busy = true;
      dispatch_now = true;
    }
  }
  if (dispatch_now) ready->push_back(std::move(work));
}

void Server::FlushConn(IoLoop* loop, const std::shared_ptr<Conn>& conn) {
  if (conn->destroyed) return;
  if (conn->kill.load(std::memory_order_acquire)) {
    if (conn->inflight.load(std::memory_order_acquire) == 0) {
      DestroyConn(loop, conn, /*discard_output=*/true);
    }
    return;
  }
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    const int64_t unflushed_before =
        static_cast<int64_t>(conn->outbuf.size() - conn->out_off);
    while (conn->out_off < conn->outbuf.size()) {
      ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                         conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn->want_write) {
            conn->want_write = true;
            loop->poller->Update(conn->fd, true);
          }
          OutbufBytesGauge()->Add(
              static_cast<int64_t>(conn->outbuf.size() - conn->out_off) -
              unflushed_before);
          return;
        }
        // Peer gone mid-write: nothing left to deliver.
        conn->out_off = conn->outbuf.size();
        dead = true;
        break;
      }
      conn->out_off += static_cast<size_t>(n);
    }
    conn->outbuf.clear();
    conn->out_off = 0;
    OutbufBytesGauge()->Add(-unflushed_before);
    if (conn->want_write) {
      conn->want_write = false;
      loop->poller->Update(conn->fd, false);
    }
  }
  if (dead) conn->read_closed = true;
  MaybeDestroyConn(loop, conn);
}

void Server::MaybeDestroyConn(IoLoop* loop,
                              const std::shared_ptr<Conn>& conn) {
  if (conn->destroyed || !conn->read_closed) return;
  if (conn->inflight.load(std::memory_order_acquire) != 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->out_off < conn->outbuf.size()) return;  // still flushing
  }
  DestroyConn(loop, conn, /*discard_output=*/false);
}

void Server::DestroyConn(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                         bool discard_output) {
  if (conn->destroyed) return;
  conn->destroyed = true;
  static Gauge* active =
      MetricsRegistry::Instance().GetGauge("rpc.connections.active");
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (discard_output) {
      OutbufBytesGauge()->Add(
          -static_cast<int64_t>(conn->outbuf.size() - conn->out_off));
      conn->outbuf.clear();
      conn->out_off = 0;
    }
    // A destroyed connection takes its waiting plain requests with it
    // (their inflight counts were released before destroy was legal).
    OrderedBacklogGauge()->Add(
        -static_cast<int64_t>(conn->ordered_backlog.size()));
    conn->ordered_backlog.clear();
  }
  loop->poller->Remove(conn->fd);
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->conns.erase(conn->fd);
  }
  active->Decrement();
  // Ensure the peer sees FIN promptly even while other references keep
  // the fd alive for a moment.
  ::shutdown(conn->fd, SHUT_RDWR);
  std::vector<uint64_t> sessions = conn->sessions.Drain();
  if (!sessions.empty()) {
    // Session teardown calls into the HAM (possibly aborting a
    // transaction); do it on a worker so one dead client cannot stall
    // every live connection on this loop.
    Work cleanup;
    cleanup.is_cleanup = true;
    cleanup.cleanup_sessions = std::move(sessions);
    EnqueueWork(std::move(cleanup));
  }
}

void Server::ReapIdleConns(IoLoop* loop) {
  const int64_t cutoff_us =
      Now() - static_cast<int64_t>(options_.idle_timeout_ms) * 1000;
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    conns.reserve(loop->conns.size());
    for (auto& [fd, c] : loop->conns) conns.push_back(c);
  }
  for (auto& conn : conns) {
    if (conn->destroyed || conn->read_closed) continue;
    if (conn->inflight.load(std::memory_order_acquire) != 0) continue;
    if (conn->last_active_us.load(std::memory_order_relaxed) > cutoff_us) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->out_off < conn->outbuf.size()) continue;
    }
    // The connection sat silent past the idle budget: reap it.
    // Sessions (and any open transaction) are cleaned up exactly as
    // for a disconnect.
    NEPTUNE_METRIC_COUNT("server.connections.reaped", 1);
    NEPTUNE_LOG(Info) << "event=connection_reaped idle_ms="
                      << options_.idle_timeout_ms;
    DestroyConn(loop, conn, /*discard_output=*/false);
  }
}


}  // namespace rpc
}  // namespace neptune

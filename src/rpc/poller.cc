#include "rpc/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace neptune {
namespace rpc {

namespace {

// poll(2) backend: an interest map rebuilt into a pollfd vector per
// wait. O(n) per wakeup, but perfectly portable and obviously correct
// — the reference the epoll backend is tested against.
class PollPoller final : public Poller {
 public:
  const char* name() const override { return "poll"; }

  Status Add(int fd, bool want_write) override {
    interest_[fd] = want_write;
    return Status::OK();
  }

  Status Update(int fd, bool want_write) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
      return Status::InvalidArgument("poller: update of unregistered fd");
    }
    it->second = want_write;
    return Status::OK();
  }

  void Remove(int fd) override { interest_.erase(fd); }

  Result<int> Wait(int timeout_ms, std::vector<Event>* out) override {
    out->clear();
    pfds_.clear();
    pfds_.reserve(interest_.size());
    for (const auto& [fd, want_write] : interest_) {
      pfds_.push_back(
          pollfd{fd, static_cast<short>(POLLIN | (want_write ? POLLOUT : 0)),
                 0});
    }
    int ready;
    do {
      ready = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      return Status::NetworkError(std::string("poll: ") +
                                  std::strerror(errno));
    }
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      Event ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(ev);
    }
    return static_cast<int>(out->size());
  }

 private:
  std::unordered_map<int, bool> interest_;  // fd -> want_write
  std::vector<pollfd> pfds_;                // scratch, reused across waits
};

#ifdef __linux__
// epoll backend: O(ready) per wakeup. Level-triggered, which matches
// the server's "drain what you can, come back for the rest" read and
// write paths with no risk of a lost edge.
class EpollPoller final : public Poller {
 public:
  explicit EpollPoller(int epfd) : epfd_(epfd) {}
  ~EpollPoller() override { ::close(epfd_); }

  const char* name() const override { return "epoll"; }

  Status Add(int fd, bool want_write) override {
    return Control(EPOLL_CTL_ADD, fd, want_write);
  }

  Status Update(int fd, bool want_write) override {
    return Control(EPOLL_CTL_MOD, fd, want_write);
  }

  void Remove(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  Result<int> Wait(int timeout_ms, std::vector<Event>* out) override {
    out->clear();
    epoll_event evs[128];
    int ready;
    do {
      ready = ::epoll_wait(epfd_, evs, 128, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      return Status::NetworkError(std::string("epoll_wait: ") +
                                  std::strerror(errno));
    }
    for (int i = 0; i < ready; ++i) {
      Event ev;
      ev.fd = evs[i].data.fd;
      ev.readable = (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      ev.writable = (evs[i].events & EPOLLOUT) != 0;
      ev.error = (evs[i].events & EPOLLERR) != 0;
      out->push_back(ev);
    }
    return ready;
  }

 private:
  Status Control(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      return Status::NetworkError(std::string("epoll_ctl: ") +
                                  std::strerror(errno));
    }
    return Status::OK();
  }

  const int epfd_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::Create() {
#ifdef __linux__
  const char* force = std::getenv("NEPTUNE_RPC_FORCE_POLL");
  if (force == nullptr || force[0] == '\0' || force[0] == '0') {
    int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd >= 0) return std::make_unique<EpollPoller>(epfd);
  }
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace rpc
}  // namespace neptune

// Wire protocol between Neptune clients and the HAM server.
//
// Neptune's HAM "has a central server which is accessible over a local
// area network ... the user interface process communicates with the
// HAM using a remote procedure call mechanism" (paper §2.2/§4.1). This
// module defines that RPC encoding:
//
//   frame   := fixed32 length | fixed32 masked_crc32c(payload) | payload
//   request := method(u8) | method-specific fields
//   reply   := status_code(u8) | status_message | method-specific fields
//
// One request is answered by exactly one reply, in order, per
// connection. All integers are varints unless stated; strings are
// length-prefixed. The codecs below are shared by the server and the
// client stub so the two cannot drift.

#ifndef NEPTUNE_RPC_WIRE_H_
#define NEPTUNE_RPC_WIRE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "delta/text_diff.h"
#include "ham/ham_interface.h"
#include "ham/types.h"

namespace neptune {
namespace rpc {

// Maximum accepted frame payload; guards against garbage lengths.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class Method : uint8_t {
  kCreateGraph = 1,
  kDestroyGraph = 2,
  kOpenGraph = 3,
  kCloseGraph = 4,
  kBeginTransaction = 5,
  kCommitTransaction = 6,
  kAbortTransaction = 7,
  kAddNode = 8,
  kDeleteNode = 9,
  kAddLink = 10,
  kCopyLink = 11,
  kDeleteLink = 12,
  kLinearizeGraph = 13,
  kGetGraphQuery = 14,
  kOpenNode = 15,
  kModifyNode = 16,
  kGetNodeTimeStamp = 17,
  kChangeNodeProtection = 18,
  kGetNodeVersions = 19,
  kGetNodeDifferences = 20,
  kGetToNode = 21,
  kGetFromNode = 22,
  kGetAttributes = 23,
  kGetAttributeValues = 24,
  kGetAttributeIndex = 25,
  kSetNodeAttributeValue = 26,
  kDeleteNodeAttribute = 27,
  kGetNodeAttributeValue = 28,
  kGetNodeAttributes = 29,
  kSetLinkAttributeValue = 30,
  kDeleteLinkAttribute = 31,
  kGetLinkAttributeValue = 32,
  kGetLinkAttributes = 33,
  kSetGraphDemonValue = 34,
  kGetGraphDemons = 35,
  kSetNodeDemon = 36,
  kGetNodeDemons = 37,
  kCreateContext = 38,
  kOpenContext = 39,
  kMergeContext = 40,
  kListContexts = 41,
  kCheckpoint = 42,
  kGetStats = 43,
  kContextThread = 44,
  kPing = 45,
  kGetServerStatistics = 46,
  kGetRecentTraces = 47,
  kGetSlowOps = 48,
  // Batch operations: several logical HAM calls answered in one round
  // trip. Each carries per-item status in the reply, so one bad item
  // does not fail its siblings.
  kOpenNodes = 49,
  kGetAttributeValuesBatch = 50,
  kLinearizeAndFetch = 51,

  // getGraphQuery with plan reporting (`neptune_ctl query --explain`).
  kGetGraphQueryExplained = 52,

  // WAL-shipping replication (followers pull; see ham/types.h).
  kReplFetch = 53,
  kReplStatus = 54,
  kReplListGraphs = 55,
  kReplPromote = 56,

  // Windowed statistics (obs/window.h): `varint window_seconds` in,
  // `status | varint elapsed_us | MetricsSnapshot delta` out. The
  // delta covers the newest sampled span of at least the requested
  // window; elapsed_us = 0 means the server has no sampler running.
  kGetServerStatisticsDelta = 57,
};

// Trace-context frame extension. A request whose method byte carries
// this flag is followed by a trace context (EncodeTraceContextTo)
// before the method fields, letting the server parent its spans under
// the client's (common/trace.h). The same trick as the keyframe flag
// in the version-chain encoding: old peers see an unknown method byte
// (>= 0x80 is outside the enum) and answer "malformed request: unknown
// method", which a new client treats as "downgrade and re-send plain".
constexpr uint8_t kTraceContextFlag = 0x80;

// Request-id frame extension, the pipelining handshake. A request
// whose method byte carries this flag is followed by a varint request
// id (after the trace context, when both flags are set) and its reply
// comes back *tagged* — `varint request_id | status | fields` instead
// of `status | fields` — which frees the server to complete requests
// on one connection out of order. Same discipline as the trace flag:
// an old server sees an unknown method byte (0x40 | m is outside the
// enum for every real method) and answers "malformed request: unknown
// method", which a new client treats as "this server cannot pipeline —
// downgrade to one request in flight and re-send plain".
//
// Request ids are per-connection, chosen by the client, non-zero, and
// must be unique among the requests currently in flight; they may wrap
// and be reused once the earlier reply has arrived.
constexpr uint8_t kRequestIdFlag = 0x40;

// Methods must stay below kRequestIdFlag so the two flag bits are
// unambiguous.
static_assert(static_cast<uint8_t>(Method::kGetServerStatisticsDelta) <
                  kRequestIdFlag,
              "method values collide with the request-id flag bit");

// Encodes/decodes the propagated trace context (common/trace.h):
//   fixed64 trace_id | fixed64 parent_span_id | u8 flags (bit0 sampled)
void EncodeTraceContextTo(const TraceContext& ctx, std::string* out);
bool DecodeTraceContextFrom(std::string_view* in, TraceContext* ctx);

// Stable lower-camel-case name for a method ("createGraph", "ping");
// "unknown" for bytes outside the enum. Used for per-method metrics
// and diagnostics.
const char* MethodName(Method method);

// True for methods a client may safely re-send after a transport
// failure without knowing whether the lost request was executed:
// ping and every read-only operation. Mutations are excluded — the
// original may have committed before the connection died.
bool IsIdempotent(Method method);

// ------------------------------------------------------------- framing

// Wraps a payload in a length+crc frame.
std::string FramePayload(std::string_view payload);

// Appends a frame carrying `prefix + payload` directly to *out,
// without materializing the concatenated payload. The prefix carries a
// reply's request-id tag; pass "" for untagged frames.
void AppendFrame(std::string_view prefix, std::string_view payload,
                 std::string* out);

// Incremental frame splitter for a byte stream.
class FrameDecoder {
 public:
  // Tightens the limits below the process-wide kMaxFrameBytes ceiling.
  // `max_frame_bytes` bounds a single payload; `max_buffered_bytes`
  // bounds the bytes the decoder will hold while waiting for a frame to
  // complete, so a peer drip-feeding an enormous frame cannot pin
  // memory. Values of 0 keep the previous limit.
  void set_limits(uint32_t max_frame_bytes, size_t max_buffered_bytes);

  // Feeds received bytes; complete payloads are appended to `out`.
  // A length prefix beyond the frame limit fails with kInvalidArgument
  // *before* the claimed bytes are buffered (a hostile 4GB prefix never
  // allocates 4GB); a bad CRC fails with kCorruption.
  Status Feed(std::string_view bytes, std::vector<std::string>* out);

 private:
  uint32_t max_frame_bytes_ = kMaxFrameBytes;
  size_t max_buffered_bytes_ = 8 + static_cast<size_t>(kMaxFrameBytes);
  std::string buffer_;
};

// --------------------------------------------------- value (de)coders
// Shared composite-type codecs. Decoders consume from a string_view
// and fail with Corruption on malformed input.

void EncodeStatusTo(const Status& status, std::string* out);
// Decodes a reply's status header into *status; false on malformed
// input.
bool DecodeStatusFrom(std::string_view* in, Status* status);

void EncodeLinkPtTo(const ham::LinkPt& pt, std::string* out);
bool DecodeLinkPtFrom(std::string_view* in, ham::LinkPt* pt);

void EncodeStringVecTo(const std::vector<std::string>& v, std::string* out);
bool DecodeStringVecFrom(std::string_view* in, std::vector<std::string>* v);

void EncodeIndexVecTo(const std::vector<uint64_t>& v, std::string* out);
bool DecodeIndexVecFrom(std::string_view* in, std::vector<uint64_t>* v);

void EncodeSubGraphTo(const ham::SubGraph& graph, std::string* out);
bool DecodeSubGraphFrom(std::string_view* in, ham::SubGraph* graph);

// getGraphQueryExplained reply: the sub-graph followed by the plan —
//   varint kind | u8 flags (eligible, rebuilt<<1, verified<<2,
//   verify_match<<3) | varints conjuncts, candidates, residual_evals,
//   nodes_matched, links_matched, applied_deltas
void EncodeQueryExplainTo(const ham::QueryExplain& r, std::string* out);
bool DecodeQueryExplainFrom(std::string_view* in, ham::QueryExplain* r);

void EncodeOpenNodeResultTo(const ham::OpenNodeResult& r, std::string* out);
bool DecodeOpenNodeResultFrom(std::string_view* in, ham::OpenNodeResult* r);

void EncodeNodeVersionsTo(const ham::NodeVersions& v, std::string* out);
bool DecodeNodeVersionsFrom(std::string_view* in, ham::NodeVersions* v);

void EncodeDifferencesTo(const std::vector<delta::Difference>& diffs,
                         std::string* out);
bool DecodeDifferencesFrom(std::string_view* in,
                           std::vector<delta::Difference>* diffs);

void EncodeAttributeEntriesTo(const std::vector<ham::AttributeEntry>& v,
                              std::string* out);
bool DecodeAttributeEntriesFrom(std::string_view* in,
                                std::vector<ham::AttributeEntry>* v);

void EncodeAttributeValueEntriesTo(
    const std::vector<ham::AttributeValueEntry>& v, std::string* out);
bool DecodeAttributeValueEntriesFrom(std::string_view* in,
                                     std::vector<ham::AttributeValueEntry>* v);

void EncodeDemonEntriesTo(const std::vector<ham::DemonEntry>& v,
                          std::string* out);
bool DecodeDemonEntriesFrom(std::string_view* in,
                            std::vector<ham::DemonEntry>* v);

void EncodeContextInfosTo(const std::vector<ham::ContextInfo>& v,
                          std::string* out);
bool DecodeContextInfosFrom(std::string_view* in,
                            std::vector<ham::ContextInfo>* v);

void EncodeAttachmentUpdatesTo(const std::vector<ham::AttachmentUpdate>& v,
                               std::string* out);
bool DecodeAttachmentUpdatesFrom(std::string_view* in,
                                 std::vector<ham::AttachmentUpdate>* v);

void EncodeStatsTo(const ham::GraphStats& stats, std::string* out);
bool DecodeStatsFrom(std::string_view* in, ham::GraphStats* stats);

// Replication protocol (Method::kReplFetch / kReplStatus):
//   request := string directory | string follower_id | varints term,
//              epoch, offset, max_bytes, wait_ms
//   fetch reply := u8 action | varints term, epoch, offset |
//                  bool epoch_end | varint epoch_bytes |
//                  string meta | string payload
void EncodeReplFetchRequestTo(const ham::ReplFetchRequest& r,
                              std::string* out);
bool DecodeReplFetchRequestFrom(std::string_view* in,
                                ham::ReplFetchRequest* r);
void EncodeReplFetchResultTo(const ham::ReplFetchResult& r, std::string* out);
bool DecodeReplFetchResultFrom(std::string_view* in, ham::ReplFetchResult* r);

void EncodeReplNodeStatusTo(const ham::ReplNodeStatus& s, std::string* out);
bool DecodeReplNodeStatusFrom(std::string_view* in, ham::ReplNodeStatus* s);

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_WIRE_H_

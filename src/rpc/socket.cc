#include "rpc/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace neptune {
namespace rpc {

namespace {

// Classifies an errno so callers can tell "took too long" (retry the
// same stream? no — but the op may be retried) from "the peer is gone"
// (reconnect) from "something else broke".
Status SockError(std::string_view op, int err) {
  const std::string msg = std::string(op) + ": " + std::strerror(err);
  if (err == EAGAIN || err == EWOULDBLOCK) {
    return Status::DeadlineExceeded(msg);
  }
  if (err == ECONNREFUSED || err == ECONNRESET || err == EPIPE ||
      err == ENOTCONN || err == ETIMEDOUT || err == EHOSTUNREACH ||
      err == ENETUNREACH) {
    return Status::Unavailable(msg);
  }
  return Status::NetworkError(msg);
}

}  // namespace

FrameStream::~FrameStream() {
  if (fd_ < 0) return;  // in-memory subclass: nothing to release
  FrameStream::Close();
  ::close(fd_);
}

void FrameStream::Close() {
  // shutdown() (not close()) so another thread blocked in recv/send on
  // this fd wakes up without racing on the descriptor's lifetime.
  if (!closed_.exchange(true) && fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FrameStream::CloseRead() {
  if (!closed_.load() && fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

Status FrameStream::SetTimeouts(int send_timeout_ms, int recv_timeout_ms) {
  const auto arm = [this](int option, int ms) -> Status {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
      return SockError("setsockopt", errno);
    }
    return Status::OK();
  };
  NEPTUNE_RETURN_IF_ERROR(arm(SO_SNDTIMEO, send_timeout_ms));
  return arm(SO_RCVTIMEO, recv_timeout_ms);
}

Result<std::unique_ptr<FrameStream>> FrameStream::Connect(
    const std::string& host, uint16_t port, int connect_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket", errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost" || host.empty())
                             ? std::string("127.0.0.1")
                             : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unresolvable host '" + host +
                                   "' (IPv4 literals only)");
  }
  const std::string where = ip + ":" + std::to_string(port);
  // Connect in non-blocking mode and poll for the result: this bounds
  // the wait to connect_timeout_ms and rides out EINTR (a blocking
  // connect interrupted by a signal cannot simply be retried).
  const int fl = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      int err = errno;
      ::close(fd);
      return SockError("connect " + where, err);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout = connect_timeout_ms > 0 ? connect_timeout_ms : -1;
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      int err = errno;
      ::close(fd);
      return SockError("connect " + where, err);
    }
    if (ready == 0) {
      ::close(fd);
      return Status::DeadlineExceeded("connect " + where + ": timed out after " +
                                      std::to_string(connect_timeout_ms) +
                                      "ms");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      ::close(fd);
      return SockError("connect " + where, soerr);
    }
  }
  ::fcntl(fd, F_SETFL, fl);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<FrameStream>(new FrameStream(fd));
}

void FrameStream::SetLimits(uint32_t max_frame_bytes,
                            size_t max_buffered_bytes) {
  if (max_frame_bytes > 0) {
    max_frame_bytes_ = std::min(max_frame_bytes, kMaxFrameBytes);
  }
  decoder_.set_limits(max_frame_bytes, max_buffered_bytes);
}

Status FrameStream::SendFrame(std::string_view payload) {
  if (closed_.load()) return Status::NetworkError("stream is closed");
  // Symmetric with the decode-side limit: refuse before FramePayload
  // copies the oversized payload into a frame buffer.
  if (payload.size() > max_frame_bytes_) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds limit of " + std::to_string(max_frame_bytes_));
  }
  std::string frame = FramePayload(payload);
  return SendBytes(frame);
}

Status FrameStream::SendBytes(std::string_view bytes) {
  if (closed_.load()) return Status::NetworkError("stream is closed");
  std::string_view rest = bytes;
  while (!rest.empty()) {
    ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SockError("send", errno);
    }
    rest.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Result<std::string> FrameStream::RecvFrame() {
  while (pending_.empty()) {
    if (closed_.load()) return Status::NetworkError("stream is closed");
    char buf[1 << 16];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SockError("recv", errno);
    }
    if (n == 0) return Status::Unavailable("connection closed");
    NEPTUNE_RETURN_IF_ERROR(
        decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)),
                      &pending_));
  }
  std::string frame = std::move(pending_.front());
  pending_.erase(pending_.begin());
  return frame;
}

Listener::~Listener() {
  Shutdown();
  ::close(fd_);
}

Result<std::unique_ptr<Listener>> Listener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket", errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return SockError("bind port " + std::to_string(port), err);
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    return SockError("listen", err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int err = errno;
    ::close(fd);
    return SockError("getsockname", err);
  }
  return std::unique_ptr<Listener>(new Listener(fd, ntohs(addr.sin_port)));
}

Status Listener::SetNonblocking() {
  const int fl = ::fcntl(fd_, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd_, F_SETFL, fl | O_NONBLOCK) != 0) {
    return SockError("fcntl", errno);
  }
  return Status::OK();
}

Result<int> Listener::AcceptFd() {
  for (;;) {
    if (shut_down_.load()) {
      return Status::NetworkError("listener is shut down");
    }
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const int fl = ::fcntl(client, F_GETFL, 0);
      ::fcntl(client, F_SETFL, fl | O_NONBLOCK);
      return client;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("accept: no connection pending");
    }
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // Resource exhaustion is transient under a connection flood; back
      // off briefly so a level-triggered readiness loop does not spin,
      // then let it retry.
      ::poll(nullptr, 0, 10);
      return Status::DeadlineExceeded("accept: out of descriptors");
    }
    return SockError("accept", errno);
  }
}

Result<std::unique_ptr<FrameStream>> Listener::Accept() {
  // EINTR/ECONNABORTED handling mirrors the client-side recv/connect
  // loops: both are transient and must never tear down the listener.
  // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) is also
  // transient under a connection flood — a misbehaving client that
  // burns every fd must not permanently kill the accept loop, so back
  // off briefly and retry until Shutdown().
  int client;
  for (;;) {
    if (shut_down_.load()) {
      return Status::NetworkError("listener is shut down");
    }
    client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) break;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      ::poll(nullptr, 0, 10);  // let connections close, then retry
      continue;
    }
    return SockError("accept", errno);
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<FrameStream>(new FrameStream(client));
}

void Listener::Shutdown() {
  // As in FrameStream::Close: shutdown() unblocks a concurrent
  // accept(); the fd stays valid until the destructor.
  if (!shut_down_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace rpc
}  // namespace neptune

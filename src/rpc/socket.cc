#include "rpc/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace neptune {
namespace rpc {

namespace {

Status SockError(std::string_view op, int err) {
  return Status::NetworkError(std::string(op) + ": " + std::strerror(err));
}

}  // namespace

FrameStream::~FrameStream() {
  Close();
  ::close(fd_);
}

void FrameStream::Close() {
  // shutdown() (not close()) so another thread blocked in recv/send on
  // this fd wakes up without racing on the descriptor's lifetime.
  if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
}

Result<std::unique_ptr<FrameStream>> FrameStream::Connect(
    const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket", errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost" || host.empty())
                             ? std::string("127.0.0.1")
                             : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unresolvable host '" + host +
                                   "' (IPv4 literals only)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return SockError("connect " + ip + ":" + std::to_string(port), err);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<FrameStream>(new FrameStream(fd));
}

Status FrameStream::SendFrame(std::string_view payload) {
  if (closed_.load()) return Status::NetworkError("stream is closed");
  std::string frame = FramePayload(payload);
  std::string_view rest = frame;
  while (!rest.empty()) {
    ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SockError("send", errno);
    }
    rest.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Result<std::string> FrameStream::RecvFrame() {
  while (pending_.empty()) {
    if (closed_.load()) return Status::NetworkError("stream is closed");
    char buf[1 << 16];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SockError("recv", errno);
    }
    if (n == 0) return Status::NetworkError("connection closed");
    NEPTUNE_RETURN_IF_ERROR(
        decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)),
                      &pending_));
  }
  std::string frame = std::move(pending_.front());
  pending_.erase(pending_.begin());
  return frame;
}

Listener::~Listener() {
  Shutdown();
  ::close(fd_);
}

Result<std::unique_ptr<Listener>> Listener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket", errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return SockError("bind port " + std::to_string(port), err);
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    return SockError("listen", err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int err = errno;
    ::close(fd);
    return SockError("getsockname", err);
  }
  return std::unique_ptr<Listener>(new Listener(fd, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<FrameStream>> Listener::Accept() {
  if (shut_down_.load()) return Status::NetworkError("listener is shut down");
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return SockError("accept", errno);
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<FrameStream>(new FrameStream(client));
}

void Listener::Shutdown() {
  // As in FrameStream::Close: shutdown() unblocks a concurrent
  // accept(); the fd stays valid until the destructor.
  if (!shut_down_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace rpc
}  // namespace neptune

// Implementations of the Appendix A.1–A.5 operations and the §5
// extensions on the local Ham engine. Session/transaction plumbing
// lives in ham.cc.

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "ham/ham.h"

#include "common/metrics.h"
#include "common/trace.h"

namespace neptune {
namespace ham {

namespace {

// Shared (reader) acquisition of the per-graph lock: read-only
// operations run in parallel across server threads, while Execute,
// commits, checkpoints and other mutators still take the mutex
// exclusively. Counted so deployments can see read concurrency.
class SharedReadLock {
 public:
  explicit SharedReadLock(std::shared_mutex& mu)
      : lock_(mu, std::defer_lock) {
    // The wait (if any) gets its own span so a read stalled behind a
    // writer shows up as lock time, not op time.
    NEPTUNE_TRACE_SPAN(span, "ham.lock.shared_wait");
    lock_.lock();
    NEPTUNE_METRIC_COUNT("ham.read.shared_lock", 1);
  }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

bool NodeCanRead(uint32_t protections) { return (protections & 0444) != 0; }

// Validates that every requested attribute index is defined.
Status ValidateAttrRequest(const AttributeTable& table,
                           const std::vector<AttributeIndex>& attrs) {
  for (AttributeIndex attr : attrs) {
    if (!table.ExistedAt(attr, 0)) {
      return Status::NotFound("attribute index " + std::to_string(attr) +
                              " is not defined");
    }
  }
  return Status::OK();
}

// Normalizes a caller LinkPt per the Appendix: "If a Time is zero then
// the link always refers to the current version".
LinkPt Normalize(LinkPt pt) {
  pt.track_current = (pt.time == 0);
  return pt;
}

// All HamOptions cap rejections funnel through here so operators can
// watch ham.limits.rejected for hostile or misconfigured clients. The
// checks run before Execute, i.e. before any WAL write.
Status LimitExceeded(std::string what) {
  NEPTUNE_METRIC_COUNT("ham.limits.rejected", 1);
  return Status::InvalidArgument(std::move(what));
}

}  // namespace

// ----------------------------------------------------- A.1 structure

Result<AddNodeResult> Ham::AddNode(Context ctx, bool keep_history) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.addNode");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.structure");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  Op op;
  op.kind = OpKind::kAddNode;
  op.flag = keep_history;
  {
    std::lock_guard<std::shared_mutex> lock(graph->mu);
    op.node = graph->state.AllocateNodeIndex();
  }
  NEPTUNE_RETURN_IF_ERROR(Execute(session.get(), ctx.session, &op));
  return AddNodeResult{op.node, op.time};
}

Status Ham::DeleteNode(Context ctx, NodeIndex node) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.deleteNode");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.structure");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kDeleteNode;
  op.node = node;
  return Execute(session.get(), ctx.session, &op);
}

Result<AddLinkResult> Ham::AddLink(Context ctx, const LinkPt& from,
                                   const LinkPt& to) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.addLink");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.structure");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  Op op;
  op.kind = OpKind::kAddLink;
  op.from = Normalize(from);
  op.to = Normalize(to);
  {
    std::lock_guard<std::shared_mutex> lock(graph->mu);
    op.link = graph->state.AllocateLinkIndex();
  }
  NEPTUNE_RETURN_IF_ERROR(Execute(session.get(), ctx.session, &op));
  return AddLinkResult{op.link, op.time};
}

Result<AddLinkResult> Ham::CopyLink(Context ctx, LinkIndex link, Time time,
                                    bool copy_source, const LinkPt& other) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.copyLink");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.structure");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  LinkPt copied;
  {
    SharedReadLock lock(graph->mu);
    const GraphState::TxnOverlay* overlay =
        session->in_txn ? &session->overlay : nullptr;
    const LinkRecord* record =
        graph->state.FindLink(session->thread, overlay, link);
    if (record == nullptr || !record->ExistsAt(time)) {
      return Status::NotFound("link " + std::to_string(link) +
                              " does not exist at time " +
                              std::to_string(time));
    }
    const LinkEnd& end = copy_source ? record->from : record->to;
    copied.node = end.node;
    copied.position = end.PositionAt(time);
    copied.time = end.track_current ? 0 : end.pinned_time;
    copied.track_current = end.track_current;
  }
  // "If Boolean has value true then the source of the new link is
  // identical to that of LinkIndex."
  if (copy_source) {
    return AddLink(ctx, copied, other);
  }
  return AddLink(ctx, other, copied);
}

Status Ham::DeleteLink(Context ctx, LinkIndex link) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.deleteLink");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.structure");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kDeleteLink;
  op.link = link;
  return Execute(session.get(), ctx.session, &op);
}

// -------------------------------------------------------- A.1 queries

Result<SubGraph> Ham::LinearizeGraph(
    Context ctx, NodeIndex start, Time time, const std::string& node_pred,
    const std::string& link_pred,
    const std::vector<AttributeIndex>& node_attrs,
    const std::vector<AttributeIndex>& link_attrs) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.linearizeGraph");
  if (op_span.active()) {
    op_span.Annotate("start=" + std::to_string(start) +
                     " time=" + std::to_string(time));
  }
  NEPTUNE_METRIC_TIMED(timer, "ham.op.query");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  NEPTUNE_ASSIGN_OR_RETURN(query::Predicate np, query::Predicate::Parse(node_pred));
  NEPTUNE_ASSIGN_OR_RETURN(query::Predicate lp, query::Predicate::Parse(link_pred));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  NEPTUNE_RETURN_IF_ERROR(
      ValidateAttrRequest(graph->state.attributes(), node_attrs));
  NEPTUNE_RETURN_IF_ERROR(
      ValidateAttrRequest(graph->state.attributes(), link_attrs));
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  return graph->state.Linearize(session->thread, overlay, start, time, np, lp,
                                node_attrs, link_attrs);
}

namespace {

// One bookkeeping path for both query entry points: bumps the
// query.plan.* / query.index.* counters and annotates the op span
// with the chosen plan.
void RecordQueryPlan(const QueryPlan& plan, ScopedSpan& span) {
  switch (plan.kind) {
    case QueryPlan::Kind::kIndex:
      NEPTUNE_METRIC_COUNT("query.plan.index", 1);
      break;
    case QueryPlan::Kind::kIntersect:
      NEPTUNE_METRIC_COUNT("query.plan.intersect", 1);
      break;
    case QueryPlan::Kind::kScan:
      NEPTUNE_METRIC_COUNT("query.plan.scan", 1);
      break;
  }
  if (plan.applied_deltas > 0) {
    NEPTUNE_METRIC_COUNT("query.index.applied_deltas", plan.applied_deltas);
  }
  if (plan.rebuilt) {
    NEPTUNE_METRIC_COUNT("query.index.rebuilds", 1);
  }
  if (span.active()) {
    span.Annotate("query.plan=" + std::string(QueryPlanKindName(plan.kind)) +
                  " candidates=" + std::to_string(plan.candidates) +
                  " residual=" + std::to_string(plan.residual_evals));
  }
}

}  // namespace

Result<SubGraph> Ham::GetGraphQuery(
    Context ctx, Time time, const std::string& node_pred,
    const std::string& link_pred,
    const std::vector<AttributeIndex>& node_attrs,
    const std::vector<AttributeIndex>& link_attrs) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getGraphQuery");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.query");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  NEPTUNE_ASSIGN_OR_RETURN(query::Predicate np, query::Predicate::Parse(node_pred));
  NEPTUNE_ASSIGN_OR_RETURN(query::Predicate lp, query::Predicate::Parse(link_pred));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  NEPTUNE_RETURN_IF_ERROR(
      ValidateAttrRequest(graph->state.attributes(), node_attrs));
  NEPTUNE_RETURN_IF_ERROR(
      ValidateAttrRequest(graph->state.attributes(), link_attrs));
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  QueryPlan plan;
  auto result = graph->state.Query(session->thread, overlay, time, np, lp,
                                   node_attrs, link_attrs, &plan);
  if (result.ok()) RecordQueryPlan(plan, op_span);
  return result;
}

Result<QueryExplain> Ham::GetGraphQueryExplained(
    Context ctx, Time time, const std::string& node_pred,
    const std::string& link_pred,
    const std::vector<AttributeIndex>& node_attrs,
    const std::vector<AttributeIndex>& link_attrs,
    const QueryOptions& options) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getGraphQuery");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.query");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  NEPTUNE_ASSIGN_OR_RETURN(query::Predicate np, query::Predicate::Parse(node_pred));
  NEPTUNE_ASSIGN_OR_RETURN(query::Predicate lp, query::Predicate::Parse(link_pred));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  NEPTUNE_RETURN_IF_ERROR(
      ValidateAttrRequest(graph->state.attributes(), node_attrs));
  NEPTUNE_RETURN_IF_ERROR(
      ValidateAttrRequest(graph->state.attributes(), link_attrs));
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  QueryExplain out;
  NEPTUNE_ASSIGN_OR_RETURN(
      out.graph,
      graph->state.Query(session->thread, overlay, time, np, lp, node_attrs,
                         link_attrs, &out.plan, options.force_scan));
  if (options.verify && !options.force_scan) {
    // Re-run as a scan under the SAME shared lock — no writer can
    // commit in between, so any divergence is an index bug, not a
    // race with a concurrent mutation.
    NEPTUNE_ASSIGN_OR_RETURN(
        SubGraph scanned,
        graph->state.Query(session->thread, overlay, time, np, lp, node_attrs,
                           link_attrs, nullptr, /*force_scan=*/true));
    out.plan.verified = true;
    out.plan.verify_match =
        scanned.nodes.size() == out.graph.nodes.size() &&
        scanned.links.size() == out.graph.links.size();
    if (out.plan.verify_match) {
      for (size_t i = 0; i < scanned.nodes.size(); ++i) {
        if (scanned.nodes[i].node != out.graph.nodes[i].node) {
          out.plan.verify_match = false;
          break;
        }
      }
      for (size_t i = 0; out.plan.verify_match && i < scanned.links.size();
           ++i) {
        if (scanned.links[i].link != out.graph.links[i].link) {
          out.plan.verify_match = false;
        }
      }
    }
  }
  RecordQueryPlan(out.plan, op_span);
  return out;
}

// --------------------------------------------------------- A.2 nodes

Result<OpenNodeResult> Ham::OpenNode(
    Context ctx, NodeIndex node, Time time,
    const std::vector<AttributeIndex>& attrs) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.openNode");
  if (op_span.active()) {
    op_span.Annotate("node=" + std::to_string(node) +
                     " time=" + std::to_string(time));
  }
  NEPTUNE_METRIC_TIMED(timer, "ham.op.node");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  OpenNodeResult out;
  {
    SharedReadLock lock(graph->mu);
    NEPTUNE_RETURN_IF_ERROR(
        ValidateAttrRequest(graph->state.attributes(), attrs));
    const GraphState::TxnOverlay* overlay =
        session->in_txn ? &session->overlay : nullptr;
    const NodeRecord* record =
        graph->state.FindNode(session->thread, overlay, node);
    if (record == nullptr || !record->ExistsAt(time)) {
      return Status::NotFound("node " + std::to_string(node) +
                              " does not exist at time " +
                              std::to_string(time));
    }
    if (!NodeCanRead(record->protections)) {
      return Status::PermissionDenied("node " + std::to_string(node) +
                                      " is read-protected");
    }
    NEPTUNE_ASSIGN_OR_RETURN(out.contents, record->contents.Get(time));
    out.current_version_time = record->contents.CurrentTime();
    out.attribute_values =
        graph->state.AttributeValuesFor(record->attributes, attrs, time);
    // LinkPt* for the requested version: live attachments at `time`.
    for (bool source_end : {true, false}) {
      const std::vector<LinkIndex>& list =
          source_end ? record->out_links : record->in_links;
      for (LinkIndex index : list) {
        const LinkRecord* link =
            graph->state.FindLink(session->thread, overlay, index);
        if (link == nullptr || !link->ExistsAt(time)) continue;
        const LinkEnd& end = source_end ? link->from : link->to;
        out.attachments.push_back(Attachment{
            index, source_end, end.PositionAt(time), end.track_current});
      }
    }
  }
  // "This operation can trigger a demon."
  FireEventDemons(graph, session->thread, Event::kOpenNode, node, 0,
                  out.current_version_time);
  return out;
}

Status Ham::ModifyNode(Context ctx, NodeIndex node, Time expected_time,
                       const std::string& contents,
                       const std::vector<AttachmentUpdate>& attachments,
                       const std::string& explanation) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.modifyNode");
  if (op_span.active()) {
    op_span.Annotate("node=" + std::to_string(node) +
                     " bytes=" + std::to_string(contents.size()));
  }
  NEPTUNE_METRIC_TIMED(timer, "ham.op.node");
  if (options_.max_node_content_bytes > 0 &&
      contents.size() > options_.max_node_content_bytes) {
    return LimitExceeded(
        "node contents of " + std::to_string(contents.size()) +
        " bytes exceed max_node_content_bytes=" +
        std::to_string(options_.max_node_content_bytes));
  }
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kModifyNode;
  op.node = node;
  op.arg = expected_time;
  op.value = contents;
  op.extra = explanation;
  op.attachments.reserve(attachments.size());
  for (const AttachmentUpdate& att : attachments) {
    // Encoding contract (ops.h): node = LinkIndex, track_current =
    // is_source_end, position = new offset.
    LinkPt pt;
    pt.node = att.link;
    pt.track_current = att.is_source_end;
    pt.position = att.position;
    op.attachments.push_back(pt);
  }
  return Execute(session.get(), ctx.session, &op);
}

Result<Time> Ham::GetNodeTimeStamp(Context ctx, NodeIndex node) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getNodeTimeStamp");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.node");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const NodeRecord* record =
      graph->state.FindNode(session->thread, overlay, node);
  if (record == nullptr || !record->ExistsAt(0)) {
    return Status::NotFound("node " + std::to_string(node) +
                            " does not exist");
  }
  return record->contents.CurrentTime();
}

Status Ham::ChangeNodeProtection(Context ctx, NodeIndex node,
                                 uint32_t protections) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.changeNodeProtection");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.node");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kChangeNodeProtection;
  op.node = node;
  op.arg = protections;
  return Execute(session.get(), ctx.session, &op);
}

Result<NodeVersions> Ham::GetNodeVersions(Context ctx, NodeIndex node) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getNodeVersions");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.node");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const NodeRecord* record =
      graph->state.FindNode(session->thread, overlay, node);
  if (record == nullptr) {
    return Status::NotFound("node " + std::to_string(node) +
                            " does not exist");
  }
  NodeVersions out;
  for (const auto& v : record->contents.versions()) {
    out.major.push_back(VersionEntry{v.time, v.explanation});
  }
  out.minor = record->minor_versions;
  return out;
}

Result<std::vector<delta::Difference>> Ham::GetNodeDifferences(Context ctx,
                                                               NodeIndex node,
                                                               Time t1,
                                                               Time t2) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getNodeDifferences");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const NodeRecord* record =
      graph->state.FindNode(session->thread, overlay, node);
  if (record == nullptr) {
    return Status::NotFound("node " + std::to_string(node) +
                            " does not exist");
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::string old_contents, record->contents.Get(t1));
  NEPTUNE_ASSIGN_OR_RETURN(std::string new_contents, record->contents.Get(t2));
  return delta::DiffLines(old_contents, new_contents);
}

// --------------------------------------------------------- A.3 links

Result<LinkEndResult> Ham::GetToNode(Context ctx, LinkIndex link, Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getToNode");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.link");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const LinkRecord* record =
      graph->state.FindLink(session->thread, overlay, link);
  if (record == nullptr || !record->ExistsAt(time)) {
    return Status::NotFound("link " + std::to_string(link) +
                            " does not exist at time " + std::to_string(time));
  }
  const LinkEnd& end = record->to;
  const NodeRecord* node =
      graph->state.FindNode(session->thread, overlay, end.node);
  if (node == nullptr) {
    return Status::Corruption("link " + std::to_string(link) +
                              " references missing node");
  }
  const Time effective = end.track_current ? time : end.pinned_time;
  NEPTUNE_ASSIGN_OR_RETURN(size_t index,
                           node->contents.VersionIndexAt(effective));
  return LinkEndResult{end.node, node->contents.versions()[index].time};
}

Result<LinkEndResult> Ham::GetFromNode(Context ctx, LinkIndex link,
                                       Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getFromNode");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.link");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const LinkRecord* record =
      graph->state.FindLink(session->thread, overlay, link);
  if (record == nullptr || !record->ExistsAt(time)) {
    return Status::NotFound("link " + std::to_string(link) +
                            " does not exist at time " + std::to_string(time));
  }
  const LinkEnd& end = record->from;
  const NodeRecord* node =
      graph->state.FindNode(session->thread, overlay, end.node);
  if (node == nullptr) {
    return Status::Corruption("link " + std::to_string(link) +
                              " references missing node");
  }
  const Time effective = end.track_current ? time : end.pinned_time;
  NEPTUNE_ASSIGN_OR_RETURN(size_t index,
                           node->contents.VersionIndexAt(effective));
  return LinkEndResult{end.node, node->contents.versions()[index].time};
}

// ---------------------------------------------------- A.4 attributes

Result<std::vector<AttributeEntry>> Ham::GetAttributes(Context ctx,
                                                       Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getAttributes");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  return graph->state.attributes().AllAt(time);
}

Result<std::vector<std::string>> Ham::GetAttributeValues(Context ctx,
                                                         AttributeIndex attr,
                                                         Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getAttributeValues");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  if (!graph->state.attributes().ExistedAt(attr, time)) {
    return Status::NotFound("attribute index " + std::to_string(attr) +
                            " did not exist at time " + std::to_string(time));
  }
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  return graph->state.AttributeValuesAt(session->thread, overlay, attr, time);
}

Result<AttributeIndex> Ham::GetAttributeIndex(Context ctx,
                                              const std::string& name) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getAttributeIndex");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.attribute");
  // Interning commits immediately and is append-only, so an oversized
  // name would be a permanent blemish — check before anything else.
  if (options_.max_attribute_name_bytes > 0 &&
      name.size() > options_.max_attribute_name_bytes) {
    return LimitExceeded(
        "attribute name of " + std::to_string(name.size()) +
        " bytes exceeds max_attribute_name_bytes=" +
        std::to_string(options_.max_attribute_name_bytes));
  }
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  {
    // Fast path: the attribute already exists (the common case after
    // warm-up), served under a shared lock.
    SharedReadLock lock(graph->mu);
    Result<AttributeIndex> fast = graph->state.attributes().Lookup(name);
    if (fast.ok()) return fast;
  }
  std::lock_guard<std::shared_mutex> lock(graph->mu);
  // Re-check: another session may have interned it between the locks.
  Result<AttributeIndex> existing = graph->state.attributes().Lookup(name);
  if (existing.ok()) return existing;
  // "If no attribute exists, then creates one." Interning commits
  // immediately as its own transaction (it is append-only and must
  // survive even if a surrounding transaction aborts).
  Op op;
  op.kind = OpKind::kInternAttribute;
  op.extra = name;
  op.attr = graph->state.attributes().next_index();
  op.thread = session->thread;
  op.time = graph->state.clock().Tick();
  NEPTUNE_RETURN_IF_ERROR(graph->state.Apply(op, /*txn=*/nullptr));
  NEPTUNE_RETURN_IF_ERROR(graph->store->AppendRecord(
      EncodeTransaction({op}), options_.sync_commits));
  return op.attr;
}

Status Ham::SetNodeAttributeValue(Context ctx, NodeIndex node,
                                  AttributeIndex attr,
                                  const std::string& value) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.setNodeAttributeValue");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.attribute");
  if (options_.max_attribute_value_bytes > 0 &&
      value.size() > options_.max_attribute_value_bytes) {
    return LimitExceeded(
        "attribute value of " + std::to_string(value.size()) +
        " bytes exceeds max_attribute_value_bytes=" +
        std::to_string(options_.max_attribute_value_bytes));
  }
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  if (options_.max_attrs_per_entity > 0) {
    GraphHandle* graph = session->graph.get();
    SharedReadLock lock(graph->mu);
    const GraphState::TxnOverlay* overlay =
        session->in_txn ? &session->overlay : nullptr;
    const NodeRecord* record =
        graph->state.FindNode(session->thread, overlay, node);
    // Replacing an attached attribute is always allowed; only growth
    // past the cap is refused. A missing node falls through to Execute
    // for the canonical NotFound.
    if (record != nullptr && !record->attributes.Get(attr, 0).has_value() &&
        record->attributes.CountAt(0) >= options_.max_attrs_per_entity) {
      return LimitExceeded(
          "node " + std::to_string(node) + " already carries " +
          std::to_string(options_.max_attrs_per_entity) +
          " attributes (max_attrs_per_entity)");
    }
  }
  Op op;
  op.kind = OpKind::kSetNodeAttribute;
  op.node = node;
  op.attr = attr;
  op.value = value;
  return Execute(session.get(), ctx.session, &op);
}

Status Ham::DeleteNodeAttribute(Context ctx, NodeIndex node,
                                AttributeIndex attr) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.deleteNodeAttribute");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.attribute");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kDeleteNodeAttribute;
  op.node = node;
  op.attr = attr;
  return Execute(session.get(), ctx.session, &op);
}

Result<std::string> Ham::GetNodeAttributeValue(Context ctx, NodeIndex node,
                                               AttributeIndex attr,
                                               Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getNodeAttributeValue");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.attribute");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const NodeRecord* record =
      graph->state.FindNode(session->thread, overlay, node);
  if (record == nullptr || !record->ExistsAt(time)) {
    return Status::NotFound("node " + std::to_string(node) +
                            " does not exist at time " + std::to_string(time));
  }
  std::optional<std::string_view> value = record->attributes.Get(attr, time);
  if (!value.has_value()) {
    return Status::NotFound("attribute " + std::to_string(attr) +
                            " is not attached to node " +
                            std::to_string(node) + " at time " +
                            std::to_string(time));
  }
  return std::string(*value);
}

Result<std::vector<AttributeValueEntry>> Ham::GetNodeAttributes(
    Context ctx, NodeIndex node, Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getNodeAttributes");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const NodeRecord* record =
      graph->state.FindNode(session->thread, overlay, node);
  if (record == nullptr || !record->ExistsAt(time)) {
    return Status::NotFound("node " + std::to_string(node) +
                            " does not exist at time " + std::to_string(time));
  }
  std::vector<AttributeValueEntry> out;
  for (auto& [attr, value] : record->attributes.GetAll(time)) {
    NEPTUNE_ASSIGN_OR_RETURN(std::string name,
                             graph->state.attributes().Name(attr));
    out.push_back(AttributeValueEntry{std::move(name), attr, std::move(value)});
  }
  return out;
}

Status Ham::SetLinkAttributeValue(Context ctx, LinkIndex link,
                                  AttributeIndex attr,
                                  const std::string& value) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.setLinkAttributeValue");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.attribute");
  if (options_.max_attribute_value_bytes > 0 &&
      value.size() > options_.max_attribute_value_bytes) {
    return LimitExceeded(
        "attribute value of " + std::to_string(value.size()) +
        " bytes exceeds max_attribute_value_bytes=" +
        std::to_string(options_.max_attribute_value_bytes));
  }
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  if (options_.max_attrs_per_entity > 0) {
    GraphHandle* graph = session->graph.get();
    SharedReadLock lock(graph->mu);
    const GraphState::TxnOverlay* overlay =
        session->in_txn ? &session->overlay : nullptr;
    const LinkRecord* record =
        graph->state.FindLink(session->thread, overlay, link);
    if (record != nullptr && !record->attributes.Get(attr, 0).has_value() &&
        record->attributes.CountAt(0) >= options_.max_attrs_per_entity) {
      return LimitExceeded(
          "link " + std::to_string(link) + " already carries " +
          std::to_string(options_.max_attrs_per_entity) +
          " attributes (max_attrs_per_entity)");
    }
  }
  Op op;
  op.kind = OpKind::kSetLinkAttribute;
  op.link = link;
  op.attr = attr;
  op.value = value;
  return Execute(session.get(), ctx.session, &op);
}

Status Ham::DeleteLinkAttribute(Context ctx, LinkIndex link,
                                AttributeIndex attr) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.deleteLinkAttribute");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.attribute");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kDeleteLinkAttribute;
  op.link = link;
  op.attr = attr;
  return Execute(session.get(), ctx.session, &op);
}

Result<std::string> Ham::GetLinkAttributeValue(Context ctx, LinkIndex link,
                                               AttributeIndex attr,
                                               Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getLinkAttributeValue");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.attribute");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const LinkRecord* record =
      graph->state.FindLink(session->thread, overlay, link);
  if (record == nullptr || !record->ExistsAt(time)) {
    return Status::NotFound("link " + std::to_string(link) +
                            " does not exist at time " + std::to_string(time));
  }
  std::optional<std::string_view> value = record->attributes.Get(attr, time);
  if (!value.has_value()) {
    return Status::NotFound("attribute " + std::to_string(attr) +
                            " is not attached to link " +
                            std::to_string(link) + " at time " +
                            std::to_string(time));
  }
  return std::string(*value);
}

Result<std::vector<AttributeValueEntry>> Ham::GetLinkAttributes(
    Context ctx, LinkIndex link, Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getLinkAttributes");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const LinkRecord* record =
      graph->state.FindLink(session->thread, overlay, link);
  if (record == nullptr || !record->ExistsAt(time)) {
    return Status::NotFound("link " + std::to_string(link) +
                            " does not exist at time " + std::to_string(time));
  }
  std::vector<AttributeValueEntry> out;
  for (auto& [attr, value] : record->attributes.GetAll(time)) {
    NEPTUNE_ASSIGN_OR_RETURN(std::string name,
                             graph->state.attributes().Name(attr));
    out.push_back(AttributeValueEntry{std::move(name), attr, std::move(value)});
  }
  return out;
}

// -------------------------------------------------------- A.5 demons

Status Ham::SetGraphDemonValue(Context ctx, Event event,
                               const std::string& demon) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.setGraphDemonValue");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.demon");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kSetGraphDemon;
  op.event = event;
  op.value = demon;
  return Execute(session.get(), ctx.session, &op);
}

Result<std::vector<DemonEntry>> Ham::GetGraphDemons(Context ctx, Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getGraphDemons");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  return graph->state.GraphDemons(overlay).GetAll(time);
}

Status Ham::SetNodeDemon(Context ctx, NodeIndex node, Event event,
                         const std::string& demon) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.setNodeDemon");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.demon");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  Op op;
  op.kind = OpKind::kSetNodeDemon;
  op.node = node;
  op.event = event;
  op.value = demon;
  return Execute(session.get(), ctx.session, &op);
}

Result<std::vector<DemonEntry>> Ham::GetNodeDemons(Context ctx,
                                                   NodeIndex node,
                                                   Time time) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getNodeDemons");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  const GraphState::TxnOverlay* overlay =
      session->in_txn ? &session->overlay : nullptr;
  const NodeRecord* record =
      graph->state.FindNode(session->thread, overlay, node);
  if (record == nullptr) {
    return Status::NotFound("node " + std::to_string(node) +
                            " does not exist");
  }
  return record->demons.GetAll(time);
}

// -------------------------------------- §5 extensions: contexts etc.

Result<ContextInfo> Ham::CreateContext(Context ctx, const std::string& name) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.createContext");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.context");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  std::lock_guard<std::shared_mutex> lock(graph->mu);
  Op op;
  op.kind = OpKind::kCreateContext;
  op.arg = graph->state.AllocateThreadId();
  op.extra = name;
  op.thread = session->thread;
  op.time = graph->state.clock().Tick();
  // Like attribute interning, context creation commits immediately.
  NEPTUNE_RETURN_IF_ERROR(graph->state.Apply(op, /*txn=*/nullptr));
  NEPTUNE_RETURN_IF_ERROR(graph->store->AppendRecord(
      EncodeTransaction({op}), options_.sync_commits));
  return ContextInfo{op.arg, name, op.time};
}

Result<Context> Ham::OpenContext(Context ctx, ThreadId thread) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.openContext");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.context");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  if (thread != kMainThread) {
    SharedReadLock lock(graph->mu);
    if (graph->state.FindThread(thread) == nullptr) {
      return Status::NotFound("version thread " + std::to_string(thread) +
                              " does not exist");
    }
  }
  auto new_session = std::make_shared<Session>();
  new_session->graph = session->graph;
  new_session->thread = thread;
  new_session->time = time_;
  new_session->last_touch_us.store(time_->NowMicros(),
                                   std::memory_order_relaxed);
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    id = next_session_++;
    new_session->id = id;
    sessions_[id] = std::move(new_session);
    graph->open_sessions++;
  }
  MetricsRegistry::Instance().GetGauge("server.sessions.active")->Increment();
  return Context{id};
}

Status Ham::MergeContext(Context ctx, ThreadId source, bool force) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.mergeContext");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.context");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  if (session->in_txn) {
    return Status::FailedPrecondition(
        "mergeContext must run outside an open transaction");
  }
  Op op;
  op.kind = OpKind::kMergeContext;
  op.arg = source;
  op.flag = force;
  return Execute(session.get(), ctx.session, &op);
}

Result<std::vector<ContextInfo>> Ham::ListContexts(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.listContexts");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  return graph->state.ListThreads();
}

Status Ham::Checkpoint(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.checkpoint");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.admin");
  NEPTUNE_RETURN_IF_ERROR(RejectIfFollower());
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  Status status;
  {
    std::lock_guard<std::shared_mutex> lock(graph->mu);
    std::string snapshot;
    graph->state.EncodeTo(&snapshot);
    status = graph->store->Checkpoint(snapshot);
  }
  // The epoch changed; long-polling followers must re-read it.
  if (status.ok()) NotifyReplWaiters(graph);
  return status;
}

Result<GraphStats> Ham::GetStats(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.getStats");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.admin");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  GraphState::Stats stats = graph->state.ComputeStats();
  GraphStats out;
  out.node_count = stats.node_count;
  out.link_count = stats.link_count;
  out.total_node_records = stats.total_node_records;
  out.total_link_records = stats.total_link_records;
  out.thread_count = stats.thread_count;
  out.attribute_count = stats.attribute_count;
  out.wal_bytes = graph->store->wal_bytes();
  out.current_time = graph->state.clock().Last();
  return out;
}

Result<ThreadId> Ham::ContextThread(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.contextThread");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.context");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  return session->thread;
}

// ----------------------------------------------- local administration

Result<std::vector<std::string>> Ham::VerifyGraph(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.verifyGraph");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  GraphHandle* graph = session->graph.get();
  SharedReadLock lock(graph->mu);
  return graph->state.CheckIntegrity();
}

Result<uint64_t> Ham::PruneHistory(Context ctx, Time before) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.pruneHistory");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.admin");
  NEPTUNE_RETURN_IF_ERROR(RejectIfFollower());
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  if (session->in_txn) {
    return Status::FailedPrecondition(
        "pruneHistory must run outside an open transaction");
  }
  if (before == 0) {
    return Status::InvalidArgument("prune horizon must be a concrete time");
  }
  GraphHandle* graph = session->graph.get();
  std::unique_lock<std::shared_mutex> lock(graph->mu);
  graph->writer_cv.wait(lock, [&] { return graph->writer_session == 0; });
  Op op;
  op.kind = OpKind::kPruneHistory;
  op.arg = before;
  op.thread = kMainThread;
  op.time = graph->state.clock().Tick();
  // Count before applying (Apply returns no payload).
  NEPTUNE_RETURN_IF_ERROR(graph->state.Apply(op, /*txn=*/nullptr));
  NEPTUNE_RETURN_IF_ERROR(graph->store->AppendRecord(
      EncodeTransaction({op}), options_.sync_commits));
  // The reclaimed bytes only become real in a fresh snapshot.
  std::string snapshot;
  graph->state.EncodeTo(&snapshot);
  NEPTUNE_RETURN_IF_ERROR(graph->store->Checkpoint(snapshot));
  NotifyReplWaiters(graph);
  return static_cast<uint64_t>(snapshot.size());
}

}  // namespace ham
}  // namespace neptune

// Indexed demon dispatch. FireEventDemons used to take the graph's
// shared lock on every committed op and walk DemonHistory / FindNode to
// discover whether any demon is armed — almost always to find none.
// DemonIndex keeps a flat (event, scope) -> demon-value map for the
// main thread's *current* demon set, maintained from committed ops, so
// the per-op check is two hash probes under a private mutex.
//
// Scope rules mirror the read path in Ham::FireEventDemons:
//   - graph demons are thread-global (GraphDemons ignores the thread),
//     so any thread's kSetGraphDemon updates the index;
//   - node demons resolve through the version-thread overlay, so only
//     main-thread kSetNodeDemon ops touch the index and the fast path
//     only serves main-thread dispatch;
//   - demons survive node deletion (FindNode returns tombstoned
//     records), so kDeleteNode leaves the index alone;
//   - kMergeContext folds a thread's records into the base wholesale
//     and kPruneHistory rewrites histories, so both invalidate; the
//     next dispatch rebuilds from GraphState under the graph lock.

#ifndef NEPTUNE_HAM_DEMON_INDEX_H_
#define NEPTUNE_HAM_DEMON_INDEX_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ham/ops.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

class GraphState;

class DemonIndex {
 public:
  // Rebuilds the map from the main thread's current demon set. The
  // caller must hold the graph lock (shared is enough: this only reads
  // GraphState).
  void Rebuild(const GraphState& state);

  // Folds one committed op into the map. The caller must hold the
  // graph lock exclusively (it is called from the commit path). No-op
  // while the index is unbuilt.
  void ApplyCommitted(const Op& op);

  // Looks up the armed demons for (event, node) on the main thread.
  // Returns false when the index is not built (caller falls back to
  // the locked slow path); on true, *graph_demon / *node_demon hold
  // the demon values, empty meaning "none armed".
  bool Lookup(Event event, NodeIndex node, std::string* graph_demon,
              std::string* node_demon) const;

  void Invalidate();

  bool built() const {
    std::lock_guard<std::mutex> lock(mu_);
    return built_;
  }

 private:
  // Event fits in 4 bits (11 values); pack (node, event) into one key.
  static uint64_t NodeKey(NodeIndex node, Event event) {
    return (node << 4) | static_cast<uint64_t>(event);
  }

  mutable std::mutex mu_;
  bool built_ = false;
  std::unordered_map<uint32_t, std::string> graph_demons_;
  std::unordered_map<uint64_t, std::string> node_demons_;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_DEMON_INDEX_H_

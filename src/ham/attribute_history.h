// AttributeHistory: the versioned attribute/value pairs attached to a
// node or link. "If the node is an archive then creates a new version
// of the attribute value" (setNodeAttributeValue) — so every Set and
// Delete on a versioned object appends a timestamped entry, and reads
// at any Time reconstruct the values in effect then. Unversioned
// objects (file nodes) keep only the latest entry per attribute.

#ifndef NEPTUNE_HAM_ATTRIBUTE_HISTORY_H_
#define NEPTUNE_HAM_ATTRIBUTE_HISTORY_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

class AttributeHistory {
 public:
  // Attaches or updates `attr` to `value` at time `t`. When
  // `versioned` is false the previous entry for `attr` is replaced
  // instead of extended.
  void Set(AttributeIndex attr, Time t, std::string value, bool versioned);

  // Detaches `attr` at time `t` (recorded as a tombstone so earlier
  // times still see the old value when versioned).
  void Delete(AttributeIndex attr, Time t, bool versioned);

  // Value in effect at `t` (0 = now); nullopt when not attached.
  std::optional<std::string_view> Get(AttributeIndex attr, Time t) const;

  // All (attribute, value) pairs in effect at `t`, ascending by index.
  std::vector<std::pair<AttributeIndex, std::string>> GetAll(Time t) const;

  // Number of attributes attached (non-tombstone) at `t`, without
  // copying any values — what the per-entity attribute cap checks.
  size_t CountAt(Time t) const;

  // True if no attribute was ever attached.
  bool empty() const { return entries_.empty(); }

  // Total history entries (for stats/tests).
  size_t entry_count() const;

  // Time of the most recent entry across all attributes (0 if none);
  // used by merge-conflict detection.
  Time LastTime() const;

  // Drops entries strictly older than the one in effect at `before`
  // for every attribute (history pruning). Returns entries dropped.
  size_t PruneBefore(Time before);

  void EncodeTo(std::string* out) const;
  static Result<AttributeHistory> DecodeFrom(std::string_view* in);

 private:
  struct Entry {
    Time time = 0;
    std::optional<std::string> value;  // nullopt == tombstone
  };

  // Per attribute, entries in ascending time order.
  std::map<AttributeIndex, std::vector<Entry>> entries_;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_ATTRIBUTE_HISTORY_H_

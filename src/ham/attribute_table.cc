#include "ham/attribute_table.h"

#include "common/coding.h"

namespace neptune {
namespace ham {

Result<AttributeIndex> AttributeTable::Lookup(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("attribute '" + std::string(name) +
                            "' is not defined");
  }
  return it->second;
}

Result<AttributeIndex> AttributeTable::Intern(std::string_view name, Time t,
                                              AttributeIndex forced_index) {
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must not be empty");
  }
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (forced_index != 0 && forced_index != it->second) {
      return Status::Corruption("attribute replay index mismatch for '" +
                                std::string(name) + "'");
    }
    return it->second;
  }
  const AttributeIndex index = next_index();
  if (forced_index != 0 && forced_index != index) {
    return Status::Corruption("attribute replay assigned " +
                              std::to_string(index) + ", log says " +
                              std::to_string(forced_index));
  }
  defs_.push_back(Def{std::string(name), t});
  by_name_.emplace(std::string(name), index);
  return index;
}

Result<std::string> AttributeTable::Name(AttributeIndex index) const {
  if (index == 0 || index > defs_.size()) {
    return Status::NotFound("no attribute with index " +
                            std::to_string(index));
  }
  return defs_[index - 1].name;
}

bool AttributeTable::ExistedAt(AttributeIndex index, Time t) const {
  if (index == 0 || index > defs_.size()) return false;
  return t == 0 || defs_[index - 1].created <= t;
}

std::vector<AttributeEntry> AttributeTable::AllAt(Time t) const {
  std::vector<AttributeEntry> out;
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (t == 0 || defs_[i].created <= t) {
      out.push_back(
          AttributeEntry{defs_[i].name, static_cast<AttributeIndex>(i + 1)});
    }
  }
  return out;
}

void AttributeTable::EncodeTo(std::string* out) const {
  PutVarint64(out, defs_.size());
  for (const Def& def : defs_) {
    PutLengthPrefixed(out, def.name);
    PutVarint64(out, def.created);
  }
}

Result<AttributeTable> AttributeTable::DecodeFrom(std::string_view* in) {
  AttributeTable out;
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("attribute table: truncated count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view name;
    uint64_t created = 0;
    if (!GetLengthPrefixed(in, &name) || !GetVarint64(in, &created)) {
      return Status::Corruption("attribute table: truncated definition");
    }
    out.defs_.push_back(Def{std::string(name), created});
    out.by_name_.emplace(std::string(name),
                         static_cast<AttributeIndex>(i + 1));
  }
  return out;
}

}  // namespace ham
}  // namespace neptune

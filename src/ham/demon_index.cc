#include "ham/demon_index.h"

#include "ham/graph_state.h"

namespace neptune {
namespace ham {

void DemonIndex::Rebuild(const GraphState& state) {
  std::lock_guard<std::mutex> lock(mu_);
  graph_demons_.clear();
  node_demons_.clear();
  for (const DemonEntry& entry : state.GraphDemons(nullptr).GetAll(0)) {
    if (!entry.demon.empty()) {
      graph_demons_[static_cast<uint32_t>(entry.event)] = entry.demon;
    }
  }
  state.ForEachNode(kMainThread, nullptr, [&](const NodeRecord& node) {
    for (const DemonEntry& entry : node.demons.GetAll(0)) {
      if (!entry.demon.empty()) {
        node_demons_[NodeKey(node.index, entry.event)] = entry.demon;
      }
    }
  });
  built_ = true;
}

void DemonIndex::ApplyCommitted(const Op& op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!built_) return;
  switch (op.kind) {
    case OpKind::kSetGraphDemon:
      // Graph demons are thread-global; an empty value disarms.
      if (op.value.empty()) {
        graph_demons_.erase(static_cast<uint32_t>(op.event));
      } else {
        graph_demons_[static_cast<uint32_t>(op.event)] = op.value;
      }
      break;
    case OpKind::kSetNodeDemon:
      if (op.thread != kMainThread) break;
      if (op.value.empty()) {
        node_demons_.erase(NodeKey(op.node, op.event));
      } else {
        node_demons_[NodeKey(op.node, op.event)] = op.value;
      }
      break;
    case OpKind::kMergeContext:
    case OpKind::kPruneHistory:
      built_ = false;
      graph_demons_.clear();
      node_demons_.clear();
      break;
    default:
      break;
  }
}

bool DemonIndex::Lookup(Event event, NodeIndex node, std::string* graph_demon,
                        std::string* node_demon) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!built_) return false;
  graph_demon->clear();
  node_demon->clear();
  auto git = graph_demons_.find(static_cast<uint32_t>(event));
  if (git != graph_demons_.end()) *graph_demon = git->second;
  if (node != 0) {
    auto nit = node_demons_.find(NodeKey(node, event));
    if (nit != node_demons_.end()) *node_demon = nit->second;
  }
  return true;
}

void DemonIndex::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  built_ = false;
  graph_demons_.clear();
  node_demons_.clear();
}

}  // namespace ham
}  // namespace neptune

#include "ham/types.h"

namespace neptune {
namespace ham {

const char* EventName(Event event) {
  switch (event) {
    case Event::kOpenGraph:
      return "openGraph";
    case Event::kAddNode:
      return "addNode";
    case Event::kDeleteNode:
      return "deleteNode";
    case Event::kAddLink:
      return "addLink";
    case Event::kDeleteLink:
      return "deleteLink";
    case Event::kOpenNode:
      return "openNode";
    case Event::kModifyNode:
      return "modifyNode";
    case Event::kSetAttribute:
      return "setAttribute";
    case Event::kDeleteAttribute:
      return "deleteAttribute";
    case Event::kChangeProtection:
      return "changeProtection";
    case Event::kCommitTransaction:
      return "commitTransaction";
  }
  return "unknown";
}

const char* QueryPlanKindName(QueryPlan::Kind kind) {
  switch (kind) {
    case QueryPlan::Kind::kScan:
      return "scan";
    case QueryPlan::Kind::kIndex:
      return "index";
    case QueryPlan::Kind::kIntersect:
      return "intersect";
  }
  return "unknown";
}

}  // namespace ham
}  // namespace neptune

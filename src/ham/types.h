// Core value types of the Hypertext Abstract Machine, mirroring the
// atomic domains of the paper's Appendix:
//
//   Time            "a non-negative integer representation for a given
//                   date and time" — here a per-graph logical
//                   timestamp; 0 always means "the current version"
//   NodeIndex /     unique identifications for nodes, links and
//   LinkIndex /     attribute names within one graph
//   AttributeIndex
//   ProjectId       unique identification for a hyperdata graph
//   Context         unique identification for "the current graph" —
//                   an open-graph handle, extended here to also name a
//                   version thread (paper §5 contexts)
//   LinkPt          NodeIndex x Position x Time x Boolean
//   Version         Time x Explanation
//
// Plus the demon event vocabulary and the composite result structs the
// HAM operations return.

#ifndef NEPTUNE_HAM_TYPES_H_
#define NEPTUNE_HAM_TYPES_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace neptune {
namespace ham {

using Time = uint64_t;            // 0 = "current version" sentinel
using NodeIndex = uint64_t;       // 0 = invalid
using LinkIndex = uint64_t;       // 0 = invalid
using AttributeIndex = uint64_t;  // 0 = invalid
using ProjectId = uint64_t;
using TxnId = uint64_t;

// The id of a version thread inside a graph. Thread 0 is the main
// thread; others are private worlds created by CreateContext (§5).
using ThreadId = uint64_t;
constexpr ThreadId kMainThread = 0;

// An open-graph handle ("Context" in the Appendix): identifies the
// session's graph and the version thread its operations apply to.
struct Context {
  uint64_t session = 0;  // handle issued by OpenGraph; 0 = invalid
};

// One end of a link: where it attaches and how the attachment follows
// node versions. `track_current == true` is the paper's "automatic
// update" attachment (a history of offsets is kept per node version);
// otherwise the end is pinned to the node's version at `time`.
struct LinkPt {
  NodeIndex node = 0;
  uint64_t position = 0;
  Time time = 0;  // 0 = the current version at attachment use
  bool track_current = true;
};

// Version = Time x Explanation.
struct VersionEntry {
  Time time = 0;
  std::string explanation;
};

// HAM events that can trigger demons. kCommitTransaction is the
// extension point the documentation app uses for "annotate" bundles.
enum class Event : uint8_t {
  kOpenGraph = 0,
  kAddNode = 1,
  kDeleteNode = 2,
  kAddLink = 3,
  kDeleteLink = 4,
  kOpenNode = 5,
  kModifyNode = 6,
  kSetAttribute = 7,
  kDeleteAttribute = 8,
  kChangeProtection = 9,
  kCommitTransaction = 10,
};

// Returns e.g. "modifyNode" for Event::kModifyNode.
const char* EventName(Event event);

// The parameterized demon invocation record of paper §5 ("a set of
// parameters associated with each demon, such as the demon invoking
// event, an invocation time-stamp, or an identification of the
// invoking node or graph").
struct DemonInvocation {
  Event event = Event::kOpenGraph;
  Time timestamp = 0;
  ProjectId graph = 0;
  ThreadId thread = kMainThread;
  NodeIndex node = 0;  // 0 when not node-scoped
  LinkIndex link = 0;  // 0 when not link-scoped
  std::string demon;   // the demon value that fired
};

// Demon bodies are registered in-process (the paper planned Smalltalk/
// Modula-2/C demon bodies; we bind demon values to C++ callables).
using DemonCallback = std::function<void(const DemonInvocation&)>;

// ---------------------------------------------------------------------
// Composite operation results.

struct CreateGraphResult {
  ProjectId project = 0;
  Time creation_time = 0;
};

struct AddNodeResult {
  NodeIndex node = 0;
  Time creation_time = 0;
};

struct AddLinkResult {
  LinkIndex link = 0;
  Time creation_time = 0;
};

// One LinkPt attached to a node version, as returned by openNode.
struct Attachment {
  LinkIndex link = 0;
  bool is_source_end = false;  // this node is the link's "from" end
  uint64_t position = 0;
  bool track_current = true;
};

struct OpenNodeResult {
  std::string contents;
  std::vector<Attachment> attachments;
  // Values for the requested AttributeIndex^m, in request order;
  // nullopt where the attribute is not attached at that time.
  std::vector<std::optional<std::string>> attribute_values;
  Time current_version_time = 0;  // Time2 in the Appendix
};

struct NodeVersions {
  std::vector<VersionEntry> major;  // contents updates
  std::vector<VersionEntry> minor;  // structural/attribute updates
};

// getToNode / getFromNode result: the node and the version of it the
// link end refers to.
struct LinkEndResult {
  NodeIndex node = 0;
  Time version_time = 0;
};

// Sub-graph results for linearizeGraph / getGraphQuery.
struct SubGraphNode {
  NodeIndex node = 0;
  std::vector<std::optional<std::string>> attribute_values;
};

struct SubGraphLink {
  LinkIndex link = 0;
  NodeIndex from = 0;
  NodeIndex to = 0;
  std::vector<std::optional<std::string>> attribute_values;
};

struct SubGraph {
  std::vector<SubGraphNode> nodes;  // traversal order for linearizeGraph
  std::vector<SubGraphLink> links;
};

// How one getGraphQuery call was executed — the `--explain` payload
// and the source of the query.plan.* metrics.
struct QueryPlan {
  enum class Kind : uint8_t {
    kScan = 0,       // full visible-record scan
    kIndex = 1,      // one inverted-index probe
    kIntersect = 2,  // several probes, posting lists intersected
  };
  Kind kind = Kind::kScan;
  // Whether the view (time/thread/txn) allowed the index at all; an
  // eligible query still scans when no equality conjunct exists.
  bool eligible = false;
  uint32_t conjuncts = 0;       // equality conjuncts the planner saw
  uint64_t candidates = 0;      // nodes considered (postings or scanned)
  uint64_t residual_evals = 0;  // full-predicate evaluations run
  uint64_t nodes_matched = 0;
  uint64_t links_matched = 0;
  // Index maintenance this query performed before probing.
  uint64_t applied_deltas = 0;
  bool rebuilt = false;
  // Set by explain --verify: the indexed result was re-run as a scan
  // under the same lock and compared.
  bool verified = false;
  bool verify_match = false;
};

// Returns e.g. "index" for QueryPlan::Kind::kIndex.
const char* QueryPlanKindName(QueryPlan::Kind kind);

// Execution knobs for getGraphQueryExplained.
struct QueryOptions {
  bool force_scan = false;  // bypass the planner: always scan
  bool verify = false;      // cross-check indexed result against a scan
};

struct QueryExplain {
  SubGraph graph;
  QueryPlan plan;
};

struct AttributeEntry {
  std::string name;
  AttributeIndex index = 0;
};

struct AttributeValueEntry {
  std::string name;
  AttributeIndex index = 0;
  std::string value;
};

struct DemonEntry {
  Event event = Event::kOpenGraph;
  std::string demon;
};

// A context (version thread) visible through ListContexts.
struct ContextInfo {
  ThreadId thread = kMainThread;
  std::string name;
  Time branched_at = 0;  // 0 for the main thread
};

// ------------------------------------------------- replication types
// WAL-shipping replication (ROADMAP item 3). A follower pulls its
// primary's WAL as raw CRC-framed byte ranges and replays them into a
// read-only engine; these are the request/reply shapes of that
// protocol (Method::kReplFetch / kReplStatus).

struct ReplFetchRequest {
  std::string directory;    // graph dir on the primary
  std::string follower_id;  // stable name for ack/lag bookkeeping
  // The follower's replication position: everything below
  // (epoch, offset) is durably applied on the follower — the request
  // doubles as the acked replication offset.
  uint64_t term = 0;
  uint64_t epoch = 0;
  uint64_t offset = 0;
  uint64_t max_bytes = 1 << 20;
  // Long-poll: when no new bytes are committed, the primary may hold
  // the request up to this long before answering empty.
  uint64_t wait_ms = 0;
};

struct ReplFetchResult {
  enum class Action : uint8_t {
    kTail = 0,      // `payload` = raw WAL frames at (epoch, offset)
    kSnapshot = 1,  // follower must resync: meta + snapshot at `epoch`
    kStaleTerm = 2, // the *primary* is deposed (request term is newer)
  };
  Action action = Action::kTail;
  uint64_t term = 0;         // primary's fencing term
  uint64_t epoch = 0;        // generation `payload` belongs to
  uint64_t offset = 0;       // chunk start (echo of the request)
  bool epoch_end = false;    // generation drained; roll to epoch+1
  uint64_t epoch_bytes = 0;  // committed bytes in that generation
  std::string meta;          // kSnapshot only: PROJECT contents
  std::string payload;       // frames (kTail) or snapshot blob
};

// Replication health of one node (primary or follower) for a graph.
struct ReplNodeStatus {
  uint64_t term = 0;
  bool follower = false;
  uint64_t epoch = 0;
  uint64_t wal_bytes = 0;        // applied bytes in the live generation
  uint64_t lag_bytes = 0;        // follower: bytes behind the primary
  // Follower: ms since it was last fully caught up; 0 on a primary.
  // ~0 when it has never been caught up since (re)starting.
  uint64_t behind_ms = 0;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_TYPES_H_

// Replication halves of the Ham engine (ROADMAP item 3).
//
// Primary side: ReplFetch serves committed WAL byte ranges (or a
// snapshot, when the follower's position is unservable) and tracks
// per-follower acked offsets for the lag gauge. Follower side:
// ReplicaApply / ReplicaInstallSnapshot / ReplicaRoll keep a read-only
// engine in step with the primary's generations, reusing the PR 3
// tolerant-replay machinery for streamed corruption. Fencing is a
// per-graph term persisted by DurableStore (storage/durable_store.h):
// promotion bumps it, and both directions of a deposed pairing see the
// mismatch and refuse or resync.

#include <algorithm>
#include <chrono>
#include <functional>
#include <shared_mutex>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ham/ham.h"
#include "storage/wal.h"

namespace neptune {
namespace ham {

namespace {
// A follower silent for this long drops out of the primary's lag
// accounting (it is dead or re-pointed; its stale ack must not pin the
// gauge forever).
constexpr uint64_t kFollowerAckExpiryUs = 60'000'000;
}  // namespace

Status Ham::RejectIfFollower() const {
  if (follower()) {
    return Status::ReadOnly(
        "this node is a replication follower; writes must go to the primary");
  }
  return Status::OK();
}

void Ham::NotifyReplWaiters(GraphHandle* graph) {
  {
    std::lock_guard<std::mutex> lock(graph->repl_mu);
    graph->commit_seq++;
  }
  graph->repl_cv.notify_all();
}

void Ham::PinReplicaGraph(const std::string& directory,
                          std::shared_ptr<GraphHandle> handle) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  repl_pins_[directory] = std::move(handle);
}

// ------------------------------------------------------------ primary

Result<ReplFetchResult> Ham::ReplFetch(const ReplFetchRequest& request) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.replFetch");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.repl");
  if (follower()) {
    return Status::FailedPrecondition(
        "this node is a follower and cannot serve replication");
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<GraphHandle> graph,
                           LoadGraph(request.directory));
  GraphHandle* handle = graph.get();
  const uint64_t deadline_us = time_->NowMicros() + request.wait_ms * 1000;

  for (;;) {
    // Capture the commit sequence *before* reading the store so a
    // commit landing between the read and the wait still wakes us.
    uint64_t seen_seq = 0;
    {
      std::lock_guard<std::mutex> lock(handle->repl_mu);
      seen_seq = handle->commit_seq;
    }

    ReplFetchResult out;
    bool wait_for_data = false;
    uint64_t live_epoch = 0;
    uint64_t live_wal_bytes = 0;
    {
      std::shared_lock<std::shared_mutex> lock(handle->mu);
      const ReplRole role = handle->store->repl_role();
      live_epoch = handle->store->epoch();
      live_wal_bytes = handle->store->wal_bytes();
      out.term = role.term;
      if (request.term > role.term) {
        // The follower has seen a newer promotion than us: we are the
        // deposed primary. Serve nothing — our late appends must not
        // propagate.
        out.action = ReplFetchResult::Action::kStaleTerm;
        out.epoch = live_epoch;
        NEPTUNE_METRIC_COUNT("repl.primary.stale_term_rejects", 1);
        NEPTUNE_LOG(Warn) << "event=repl_stale_term dir=" << request.directory
                          << " follower=" << request.follower_id
                          << " follower_term=" << request.term
                          << " local_term=" << role.term;
        return out;
      }
      // A follower from an older term (or one claiming a future epoch)
      // may have divergent history: only a snapshot is safe.
      bool need_snapshot =
          request.term < role.term || request.epoch > live_epoch;
      if (!need_snapshot) {
        auto chunk = handle->store->ReadWalRange(request.epoch, request.offset,
                                                 request.max_bytes);
        if (chunk.ok()) {
          out.action = ReplFetchResult::Action::kTail;
          out.epoch = request.epoch;
          out.offset = request.offset;
          out.epoch_bytes = chunk->epoch_bytes;
          out.payload = std::move(chunk->bytes);
          out.epoch_end =
              chunk->epoch_complete &&
              request.offset + out.payload.size() >= chunk->epoch_bytes;
          wait_for_data = out.payload.empty() && !out.epoch_end;
        } else if (chunk.status().IsNotFound() ||
                   chunk.status().IsFailedPrecondition()) {
          // Generation checkpointed away, or offset past the committed
          // end: the follower is too far behind (or divergent) —
          // re-snapshot instead of failing.
          need_snapshot = true;
        } else {
          return chunk.status();
        }
      }
      if (need_snapshot) {
        NEPTUNE_ASSIGN_OR_RETURN(
            out.meta, DurableStore::ReadMeta(env_, request.directory));
        NEPTUNE_ASSIGN_OR_RETURN(out.payload,
                                 handle->store->ReadSnapshotBlob());
        out.action = ReplFetchResult::Action::kSnapshot;
        out.epoch = live_epoch;
        out.offset = 0;
        out.epoch_bytes = live_wal_bytes;
        NEPTUNE_METRIC_COUNT("repl.primary.snapshots_shipped", 1);
        NEPTUNE_METRIC_COUNT("repl.primary.snapshot_bytes",
                             out.payload.size());
      }
    }

    // Record the follower's ack (the request position is everything it
    // has durably applied) and refresh the lag gauge.
    {
      std::lock_guard<std::mutex> lock(handle->repl_mu);
      const uint64_t now = time_->NowMicros();
      GraphHandle::FollowerAck& ack = handle->followers[request.follower_id];
      ack.epoch = request.epoch;
      ack.offset = request.offset;
      ack.last_fetch_us = now;
      if (request.epoch == live_epoch) {
        ack.lag_bytes = live_wal_bytes - std::min(request.offset,
                                                  live_wal_bytes);
      } else {
        // Behind by at least the whole live generation plus whatever
        // remains of its own.
        ack.lag_bytes =
            live_wal_bytes +
            (out.epoch_bytes > request.offset && out.epoch == request.epoch
                 ? out.epoch_bytes - request.offset
                 : 0);
      }
      uint64_t max_lag = 0;
      for (auto it = handle->followers.begin();
           it != handle->followers.end();) {
        if (now - it->second.last_fetch_us > kFollowerAckExpiryUs) {
          it = handle->followers.erase(it);
        } else {
          max_lag = std::max(max_lag, it->second.lag_bytes);
          ++it;
        }
      }
      MetricsRegistry::Instance().GetGauge("repl.lag_bytes")->Set(
          static_cast<int64_t>(max_lag));
    }

    if (!wait_for_data) {
      NEPTUNE_METRIC_COUNT("repl.primary.fetches", 1);
      NEPTUNE_METRIC_COUNT("repl.primary.bytes_shipped", out.payload.size());
      if (op_span.active()) {
        op_span.Annotate(
            "follower=" + request.follower_id +
            " action=" + std::to_string(static_cast<int>(out.action)) +
            " bytes=" + std::to_string(out.payload.size()));
      }
      return out;
    }
    // Long-poll: nothing new in the live generation. Wait for a commit
    // (NotifyReplWaiters) or the deadline, then re-read.
    const uint64_t now = time_->NowMicros();
    if (now >= deadline_us) {
      NEPTUNE_METRIC_COUNT("repl.primary.fetches", 1);
      NEPTUNE_METRIC_COUNT("repl.primary.empty_polls", 1);
      return out;  // empty tail: the follower is fully caught up
    }
    std::unique_lock<std::mutex> lock(handle->repl_mu);
    handle->repl_cv.wait_for(
        lock, std::chrono::microseconds(deadline_us - now),
        [&] { return handle->commit_seq != seen_seq; });
  }
}

Result<std::vector<std::string>> Ham::ReplListGraphs(const std::string& root) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.replListGraphs");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.repl");
  std::vector<std::string> out;
  // "" names the root itself, so a single-graph deployment can point
  // --follow straight at the graph directory.
  std::function<void(const std::string&, const std::string&, int)> walk =
      [&](const std::string& abs, const std::string& rel, int depth) {
        if (DurableStore::Exists(env_, abs)) {
          out.push_back(rel);
          return;  // stores do not nest
        }
        if (depth >= 5) return;
        auto children = env_->GetChildren(abs);
        if (!children.ok()) return;
        std::sort(children->begin(), children->end());
        for (const std::string& name : *children) {
          if (name.empty() || name == "." || name == "..") continue;
          walk(JoinPath(abs, name), rel.empty() ? name : rel + "/" + name,
               depth + 1);
        }
      };
  walk(root, "", 0);
  std::sort(out.begin(), out.end());
  return out;
}

Result<ReplNodeStatus> Ham::ReplStatus(const std::string& directory) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.replStatus");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.repl");
  NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<GraphHandle> graph,
                           LoadGraph(directory));
  GraphHandle* handle = graph.get();
  ReplNodeStatus out;
  {
    std::shared_lock<std::shared_mutex> lock(handle->mu);
    const ReplRole role = handle->store->repl_role();
    out.term = role.term;
    out.follower = follower() || role.follower;
    out.epoch = handle->store->epoch();
    out.wal_bytes = handle->store->wal_bytes();
  }
  if (out.follower) {
    out.lag_bytes = handle->repl_lag_bytes.load(std::memory_order_relaxed);
    const uint64_t caught =
        handle->repl_caught_up_us.load(std::memory_order_relaxed);
    out.behind_ms =
        caught == 0 ? ~0ull : (time_->NowMicros() - caught) / 1000;
  } else {
    std::lock_guard<std::mutex> lock(handle->repl_mu);
    for (const auto& [id, ack] : handle->followers) {
      out.lag_bytes = std::max(out.lag_bytes, ack.lag_bytes);
    }
  }
  return out;
}

// ----------------------------------------------------------- follower

Result<ReplicaApplyResult> Ham::ReplicaApply(const std::string& directory,
                                             uint64_t expected_epoch,
                                             std::string_view frames) {
  NEPTUNE_TRACE_SPAN(op_span, "repl.apply");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.repl");
  if (!follower()) {
    // Fencing on the promoted node: a replicator that lost the race
    // with Promote() must not write a byte more.
    return Status::FailedPrecondition(
        "not a follower; refusing replicated bytes");
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<GraphHandle> graph,
                           LoadGraph(directory));
  PinReplicaGraph(directory, graph);
  GraphHandle* handle = graph.get();

  std::unique_lock<std::shared_mutex> lock(handle->mu);
  if (handle->store->epoch() != expected_epoch) {
    return Status::FailedPrecondition(
        "local epoch " + std::to_string(handle->store->epoch()) +
        " != streamed epoch " + std::to_string(expected_epoch));
  }
  // Re-validate the streamed frames with the same tolerant reader
  // recovery uses: a torn or corrupt record truncates the chunk at the
  // last good boundary and the replicator re-fetches from there.
  NEPTUNE_ASSIGN_OR_RETURN(LogReadResult log, ReadLog(frames));
  ReplicaApplyResult out;
  out.applied_bytes = log.valid_bytes;
  out.records_applied = log.records.size();
  out.truncated_tail = log.truncated_tail;
  out.mid_log_corruption = log.mid_log_corruption;
  if (log.truncated_tail) {
    NEPTUNE_METRIC_COUNT("repl.follower.corrupt_chunks", 1);
    NEPTUNE_LOG(Warn) << "event=repl_corrupt_chunk dir=" << directory
                      << " valid_bytes=" << log.valid_bytes
                      << " dropped_bytes=" << log.dropped_bytes
                      << " mid_log=" << log.mid_log_corruption;
  }
  if (log.valid_bytes == 0) return out;

  // Decode everything before persisting anything: a record that passes
  // its CRC but fails the transaction codec means the stream is not
  // trustworthy at all (kCorruption → the caller resyncs).
  std::vector<std::vector<Op>> transactions;
  transactions.reserve(log.records.size());
  for (const std::string& record : log.records) {
    NEPTUNE_ASSIGN_OR_RETURN(std::vector<Op> ops, DecodeTransaction(record));
    transactions.push_back(std::move(ops));
  }
  // WAL first, then memory — the same discipline as a local commit.
  NEPTUNE_RETURN_IF_ERROR(handle->store->AppendRawFrames(
      frames.substr(0, log.valid_bytes), options_.sync_commits));
  for (const std::vector<Op>& ops : transactions) {
    for (const Op& op : ops) {
      Status status = handle->state.Apply(op, /*txn=*/nullptr);
      if (!status.ok()) {
        // Local state has diverged from the stream; only a snapshot
        // resync can fix it.
        return Status::Corruption("replica apply failed for " +
                                  std::string(OpKindName(op.kind)) + ": " +
                                  status.ToString());
      }
      handle->demon_index.ApplyCommitted(op);
    }
  }
  NEPTUNE_METRIC_COUNT("repl.follower.chunks_applied", 1);
  NEPTUNE_METRIC_COUNT("repl.follower.bytes_applied", out.applied_bytes);
  NEPTUNE_METRIC_COUNT("repl.follower.records_applied", out.records_applied);
  if (op_span.active()) {
    op_span.Annotate("bytes=" + std::to_string(out.applied_bytes) +
                     " records=" + std::to_string(out.records_applied) +
                     " epoch=" + std::to_string(expected_epoch));
  }
  return out;
}

Status Ham::ReplicaInstallSnapshot(const std::string& directory,
                                   std::string_view meta,
                                   std::string_view snapshot, uint64_t epoch,
                                   uint64_t term) {
  NEPTUNE_TRACE_SPAN(op_span, "repl.install_snapshot");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.repl");
  if (!follower()) {
    return Status::FailedPrecondition(
        "not a follower; refusing replicated snapshot");
  }
  // Validate everything before touching disk.
  ProjectId project = 0;
  uint32_t protections = 0;
  NEPTUNE_RETURN_IF_ERROR(DecodeMeta(meta, &project, &protections));
  NEPTUNE_ASSIGN_OR_RETURN(GraphState state, GraphState::DecodeFrom(snapshot));
  state.set_attribute_index_enabled(options_.use_attribute_index);
  state.set_keyframe_interval(options_.keyframe_interval);

  // Reuse the open handle when there is one so existing read sessions
  // survive the resync; otherwise build a fresh one.
  std::shared_ptr<GraphHandle> graph;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = graphs_.find(directory);
    if (it != graphs_.end()) graph = it->second.lock();
  }
  const bool fresh = graph == nullptr;
  if (fresh) {
    graph = std::make_shared<GraphHandle>();
    graph->directory = directory;
  }
  GraphHandle* handle = graph.get();
  {
    std::unique_lock<std::shared_mutex> lock(handle->mu);
    NEPTUNE_ASSIGN_OR_RETURN(
        std::unique_ptr<DurableStore> store,
        DurableStore::CreateForReplica(env_, directory, meta, snapshot, epoch,
                                       term));
    store->set_keep_wal_generations(options_.repl_keep_wal_generations);
    handle->store = std::move(store);
    handle->state = std::move(state);
    handle->project = project;
    handle->protections = protections;
    handle->demon_index.Rebuild(handle->state);
  }
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    graphs_[directory] = graph;
    repl_pins_[directory] = graph;
  }
  NEPTUNE_METRIC_COUNT("repl.follower.snapshots_installed", 1);
  NEPTUNE_LOG(Warn) << "event=repl_snapshot_installed dir=" << directory
                    << " epoch=" << epoch << " term=" << term
                    << " bytes=" << snapshot.size();
  return Status::OK();
}

Status Ham::ReplicaRoll(const std::string& directory, uint64_t to_epoch) {
  NEPTUNE_TRACE_SPAN(op_span, "repl.roll");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.repl");
  if (!follower()) {
    return Status::FailedPrecondition("not a follower; refusing epoch roll");
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<GraphHandle> graph,
                           LoadGraph(directory));
  PinReplicaGraph(directory, graph);
  GraphHandle* handle = graph.get();
  std::unique_lock<std::shared_mutex> lock(handle->mu);
  if (handle->store->epoch() + 1 != to_epoch) {
    return Status::FailedPrecondition(
        "cannot roll from epoch " + std::to_string(handle->store->epoch()) +
        " to " + std::to_string(to_epoch));
  }
  // Deterministic replay makes the local state at this boundary
  // byte-equivalent to what the primary checkpointed, so the roll is a
  // plain local checkpoint and the epochs line up.
  std::string snapshot;
  handle->state.EncodeTo(&snapshot);
  NEPTUNE_RETURN_IF_ERROR(handle->store->Checkpoint(snapshot));
  NEPTUNE_METRIC_COUNT("repl.follower.rolls", 1);
  return Status::OK();
}

void Ham::NoteReplProgress(const std::string& directory, uint64_t lag_bytes,
                           bool caught_up) {
  std::shared_ptr<GraphHandle> graph;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = graphs_.find(directory);
    if (it != graphs_.end()) graph = it->second.lock();
  }
  if (graph == nullptr) return;
  graph->repl_lag_bytes.store(lag_bytes, std::memory_order_relaxed);
  if (caught_up) {
    graph->repl_caught_up_us.store(time_->NowMicros(),
                                   std::memory_order_relaxed);
  }
  MetricsRegistry::Instance().GetGauge("repl.follower.lag_bytes")->Set(
      static_cast<int64_t>(lag_bytes));
}

// ---------------------------------------------------------- promotion

Result<uint64_t> Ham::Promote() {
  NEPTUNE_TRACE_SPAN(op_span, "ham.promote");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.repl");
  const bool was_follower =
      follower_mode_.exchange(false, std::memory_order_acq_rel);
  // Every graph this engine knows about gets its term bumped; pinned
  // replica graphs are the interesting set, live client graphs ride
  // along for the standalone-primary (idempotent) case.
  std::vector<std::shared_ptr<GraphHandle>> handles;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [dir, handle] : repl_pins_) handles.push_back(handle);
    for (const auto& [dir, weak] : graphs_) {
      if (repl_pins_.count(dir)) continue;
      if (std::shared_ptr<GraphHandle> handle = weak.lock()) {
        handles.push_back(std::move(handle));
      }
    }
  }
  uint64_t new_term = 0;
  for (const std::shared_ptr<GraphHandle>& graph : handles) {
    std::unique_lock<std::shared_mutex> lock(graph->mu);
    ReplRole role = graph->store->repl_role();
    if (was_follower || role.follower) {
      role.term += 1;
      role.follower = false;
      NEPTUNE_RETURN_IF_ERROR(graph->store->SetReplRole(role));
      NEPTUNE_LOG(Warn) << "event=promoted dir=" << graph->directory
                        << " term=" << role.term;
    }
    new_term = std::max(new_term, role.term);
  }
  if (was_follower) NEPTUNE_METRIC_COUNT("repl.promotions", 1);
  MetricsRegistry::Instance().GetGauge("repl.role")->Set(0);
  MetricsRegistry::Instance().GetGauge("repl.term")->Set(
      static_cast<int64_t>(new_term));
  // A fresh primary is by definition not lagging behind anyone.
  MetricsRegistry::Instance().GetGauge("repl.apply_lag_us")->Set(0);
  return new_term;
}

}  // namespace ham
}  // namespace neptune

// HamInterface: the abstract Hypertext Abstract Machine, one virtual
// method per Appendix operation (A.1 graph, A.2 node, A.3 link,
// A.4 attribute, A.5 demon operations) plus the transaction surface
// and the §5 extensions (contexts/version threads, checkpointing).
//
// Two implementations exist:
//   ham::Ham        the local engine over DurableStore (src/ham)
//   rpc::RemoteHam  a client stub speaking the wire protocol to a
//                   neptune server (src/rpc)
// Application layers and browsers program against this interface, so
// they run unchanged locally or against a server — the paper's layered
// architecture.
//
// Deviations from the 1986 signatures, made explicit:
//  * Every operation takes the Context handle (the Appendix leaves the
//    graph implicit for node/link/attribute/demon ops).
//  * modifyNode identifies attachments by LinkIndex + end instead of
//    positional correspondence with openNode's LinkPt list.
//  * The Boolean result0 is a Status/Result carrying a reason.

#ifndef NEPTUNE_HAM_HAM_INTERFACE_H_
#define NEPTUNE_HAM_HAM_INTERFACE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "delta/text_diff.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

// A modifyNode attachment: the new offset for one end of one link
// attached to the node being modified.
struct AttachmentUpdate {
  LinkIndex link = 0;
  bool is_source_end = false;  // true: the link's "from" end is here
  uint64_t position = 0;
};

struct GraphStats {
  uint64_t node_count = 0;
  uint64_t link_count = 0;
  uint64_t total_node_records = 0;
  uint64_t total_link_records = 0;
  uint64_t thread_count = 0;
  uint64_t attribute_count = 0;
  uint64_t wal_bytes = 0;
  uint64_t current_time = 0;
};

class HamInterface {
 public:
  virtual ~HamInterface() = default;

  // ------------------------------------------------- A.1 graph ops
  virtual Result<CreateGraphResult> CreateGraph(const std::string& directory,
                                                uint32_t protections) = 0;
  virtual Status DestroyGraph(ProjectId project,
                              const std::string& directory) = 0;
  virtual Result<Context> OpenGraph(ProjectId project,
                                    const std::string& machine,
                                    const std::string& directory) = 0;
  virtual Status CloseGraph(Context ctx) = 0;

  // ---------------------------------------------------- transactions
  // Operations called outside an open transaction auto-commit as a
  // single-op transaction. Begin blocks until the graph's writer slot
  // is free (the HAM serializes writers per graph).
  virtual Status BeginTransaction(Context ctx) = 0;
  virtual Status CommitTransaction(Context ctx) = 0;
  virtual Status AbortTransaction(Context ctx) = 0;

  // ------------------------------------------- A.1 structure + query
  virtual Result<AddNodeResult> AddNode(Context ctx, bool keep_history) = 0;
  virtual Status DeleteNode(Context ctx, NodeIndex node) = 0;
  virtual Result<AddLinkResult> AddLink(Context ctx, const LinkPt& from,
                                        const LinkPt& to) = 0;
  // One end copied from `link` as of `time`; `copy_source` picks which
  // end is copied; the other end is `other`.
  virtual Result<AddLinkResult> CopyLink(Context ctx, LinkIndex link,
                                         Time time, bool copy_source,
                                         const LinkPt& other) = 0;
  virtual Status DeleteLink(Context ctx, LinkIndex link) = 0;

  virtual Result<SubGraph> LinearizeGraph(
      Context ctx, NodeIndex start, Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<AttributeIndex>& node_attrs,
      const std::vector<AttributeIndex>& link_attrs) = 0;
  virtual Result<SubGraph> GetGraphQuery(
      Context ctx, Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<AttributeIndex>& node_attrs,
      const std::vector<AttributeIndex>& link_attrs) = 0;
  // getGraphQuery plus the plan the engine chose (`neptune_ctl query
  // --explain`). The default forwards to GetGraphQuery and reports a
  // default-constructed plan, so only engines with a real planner
  // (Ham, RemoteHam) need to override.
  virtual Result<QueryExplain> GetGraphQueryExplained(
      Context ctx, Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<AttributeIndex>& node_attrs,
      const std::vector<AttributeIndex>& link_attrs,
      const QueryOptions& options) {
    (void)options;
    QueryExplain out;
    auto result =
        GetGraphQuery(ctx, time, node_pred, link_pred, node_attrs, link_attrs);
    if (!result.ok()) return result.status();
    out.graph = std::move(*result);
    return out;
  }

  // --------------------------------------------------- A.2 node ops
  virtual Result<OpenNodeResult> OpenNode(
      Context ctx, NodeIndex node, Time time,
      const std::vector<AttributeIndex>& attrs) = 0;
  // `expected_time` must equal the node's current version time (the
  // optimistic check-in of the Appendix); Conflict otherwise.
  virtual Status ModifyNode(Context ctx, NodeIndex node, Time expected_time,
                            const std::string& contents,
                            const std::vector<AttachmentUpdate>& attachments,
                            const std::string& explanation) = 0;
  virtual Result<Time> GetNodeTimeStamp(Context ctx, NodeIndex node) = 0;
  virtual Status ChangeNodeProtection(Context ctx, NodeIndex node,
                                      uint32_t protections) = 0;
  virtual Result<NodeVersions> GetNodeVersions(Context ctx,
                                               NodeIndex node) = 0;
  virtual Result<std::vector<delta::Difference>> GetNodeDifferences(
      Context ctx, NodeIndex node, Time t1, Time t2) = 0;

  // --------------------------------------------------- A.3 link ops
  virtual Result<LinkEndResult> GetToNode(Context ctx, LinkIndex link,
                                          Time time) = 0;
  virtual Result<LinkEndResult> GetFromNode(Context ctx, LinkIndex link,
                                            Time time) = 0;

  // ---------------------------------------------- A.4 attribute ops
  virtual Result<std::vector<AttributeEntry>> GetAttributes(Context ctx,
                                                            Time time) = 0;
  virtual Result<std::vector<std::string>> GetAttributeValues(
      Context ctx, AttributeIndex attr, Time time) = 0;
  virtual Result<AttributeIndex> GetAttributeIndex(
      Context ctx, const std::string& name) = 0;

  virtual Status SetNodeAttributeValue(Context ctx, NodeIndex node,
                                       AttributeIndex attr,
                                       const std::string& value) = 0;
  virtual Status DeleteNodeAttribute(Context ctx, NodeIndex node,
                                     AttributeIndex attr) = 0;
  virtual Result<std::string> GetNodeAttributeValue(Context ctx,
                                                    NodeIndex node,
                                                    AttributeIndex attr,
                                                    Time time) = 0;
  virtual Result<std::vector<AttributeValueEntry>> GetNodeAttributes(
      Context ctx, NodeIndex node, Time time) = 0;

  virtual Status SetLinkAttributeValue(Context ctx, LinkIndex link,
                                       AttributeIndex attr,
                                       const std::string& value) = 0;
  virtual Status DeleteLinkAttribute(Context ctx, LinkIndex link,
                                     AttributeIndex attr) = 0;
  virtual Result<std::string> GetLinkAttributeValue(Context ctx,
                                                    LinkIndex link,
                                                    AttributeIndex attr,
                                                    Time time) = 0;
  virtual Result<std::vector<AttributeValueEntry>> GetLinkAttributes(
      Context ctx, LinkIndex link, Time time) = 0;

  // -------------------------------------------------- A.5 demon ops
  virtual Status SetGraphDemonValue(Context ctx, Event event,
                                    const std::string& demon) = 0;
  virtual Result<std::vector<DemonEntry>> GetGraphDemons(Context ctx,
                                                         Time time) = 0;
  virtual Status SetNodeDemon(Context ctx, NodeIndex node, Event event,
                              const std::string& demon) = 0;
  virtual Result<std::vector<DemonEntry>> GetNodeDemons(Context ctx,
                                                        NodeIndex node,
                                                        Time time) = 0;

  // -------------------------- §5 extensions: contexts & maintenance
  // Creates a new version thread (private world) branched from now.
  virtual Result<ContextInfo> CreateContext(Context ctx,
                                            const std::string& name) = 0;
  // A new session handle on the same graph bound to `thread`.
  virtual Result<Context> OpenContext(Context ctx, ThreadId thread) = 0;
  // Merges `source`'s changes into the main thread; Conflict when the
  // main thread changed the same objects since the branch (unless
  // `force`).
  virtual Status MergeContext(Context ctx, ThreadId source, bool force) = 0;
  virtual Result<std::vector<ContextInfo>> ListContexts(Context ctx) = 0;

  // Forces a snapshot + WAL rotation now.
  virtual Status Checkpoint(Context ctx) = 0;
  virtual Result<GraphStats> GetStats(Context ctx) = 0;

  // The thread a session is bound to (kMainThread unless OpenContext).
  virtual Result<ThreadId> ContextThread(Context ctx) = 0;

  // ------------------------------- replication (ROADMAP item 3)
  // Defaulted to Unimplemented like GetGraphQueryExplained: only
  // engines that actually replicate (Ham as primary, RemoteHam as the
  // follower's stub to it) override, and an old server answers new
  // clients with a clean status instead of a protocol error.

  // Primary side: serve a chunk of WAL (or a snapshot, or a stale-term
  // verdict) to a follower. The request's (epoch, offset) is also the
  // follower's acked replication position.
  virtual Result<ReplFetchResult> ReplFetch(const ReplFetchRequest& request) {
    (void)request;
    return Status::Unimplemented("replication is not supported");
  }

  // Replication health of this node for one graph directory.
  virtual Result<ReplNodeStatus> ReplStatus(const std::string& directory) {
    (void)directory;
    return Status::Unimplemented("replication is not supported");
  }

  // Graph directories below `root` (relative paths), so a follower can
  // mirror everything a primary serves.
  virtual Result<std::vector<std::string>> ReplListGraphs(
      const std::string& root) {
    (void)root;
    return Status::Unimplemented("replication is not supported");
  }

  // Promotes a follower to primary: stops accepting replicated bytes,
  // starts accepting client mutations, and bumps every graph's fencing
  // term. Returns the new term. Idempotent on a primary.
  virtual Result<uint64_t> Promote() {
    return Status::Unimplemented("replication is not supported");
  }
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_HAM_INTERFACE_H_

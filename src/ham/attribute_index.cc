#include "ham/attribute_index.h"

#include <algorithm>

namespace neptune {
namespace ham {

void AttributeValueIndex::Rebuild(
    const std::unordered_map<NodeIndex, NodeRecord>& nodes, uint64_t epoch) {
  by_value_.clear();
  entries_ = 0;
  for (const auto& [index, node] : nodes) {
    if (!node.ExistsAt(0)) continue;
    for (const auto& [attr, value] : node.attributes.GetAll(0)) {
      by_value_[{attr, value}].push_back(index);
      ++entries_;
    }
  }
  for (auto& [key, list] : by_value_) {
    (void)key;
    std::sort(list.begin(), list.end());
  }
  built_ = true;
  epoch_ = epoch;
  ++rebuilds_;
}

void AttributeValueIndex::ApplyDelta(const AttributeIndexDelta& delta) {
  ++applied_deltas_;
  if (delta.old_value.has_value()) {
    auto it = by_value_.find({delta.attr, *delta.old_value});
    if (it != by_value_.end()) {
      std::vector<NodeIndex>& list = it->second;
      auto pos = std::lower_bound(list.begin(), list.end(), delta.node);
      if (pos != list.end() && *pos == delta.node) {
        list.erase(pos);
        --entries_;
      }
      if (list.empty()) by_value_.erase(it);
    }
  }
  if (delta.new_value.has_value()) {
    std::vector<NodeIndex>& list = by_value_[{delta.attr, *delta.new_value}];
    auto pos = std::lower_bound(list.begin(), list.end(), delta.node);
    if (pos == list.end() || *pos != delta.node) {
      list.insert(pos, delta.node);
      ++entries_;
    }
  }
}

const std::vector<NodeIndex>& AttributeValueIndex::Lookup(
    AttributeIndex attr, const std::string& value) const {
  static const std::vector<NodeIndex> kEmpty;
  auto it = by_value_.find({attr, value});
  return it == by_value_.end() ? kEmpty : it->second;
}

}  // namespace ham
}  // namespace neptune

#include "ham/attribute_index.h"

#include <algorithm>

namespace neptune {
namespace ham {

void AttributeValueIndex::Rebuild(
    const std::unordered_map<NodeIndex, NodeRecord>& nodes, uint64_t epoch) {
  by_value_.clear();
  entries_ = 0;
  for (const auto& [index, node] : nodes) {
    if (!node.ExistsAt(0)) continue;
    for (const auto& [attr, value] : node.attributes.GetAll(0)) {
      by_value_[{attr, value}].push_back(index);
      ++entries_;
    }
  }
  for (auto& [key, list] : by_value_) {
    (void)key;
    std::sort(list.begin(), list.end());
  }
  built_ = true;
  epoch_ = epoch;
  ++rebuilds_;
}

const std::vector<NodeIndex>& AttributeValueIndex::Lookup(
    AttributeIndex attr, const std::string& value) const {
  static const std::vector<NodeIndex> kEmpty;
  auto it = by_value_.find({attr, value});
  return it == by_value_.end() ? kEmpty : it->second;
}

}  // namespace ham
}  // namespace neptune

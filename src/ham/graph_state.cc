#include "ham/graph_state.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/coding.h"

namespace neptune {
namespace ham {

namespace {

// Pending attribute-index deltas beyond this force a rebuild instead:
// past a few thousand changes, replaying them one by one stops being
// cheaper than rebuilding, and the queue must not grow without bound
// on a graph that is written but never queried.
constexpr size_t kMaxPendingIndexDeltas = 4096;

// Adapts a record's attribute history (at a time) to the predicate
// evaluator, resolving attribute names through the graph's table.
class RecordAttributeSource : public query::AttributeSource {
 public:
  RecordAttributeSource(const AttributeTable& table,
                        const AttributeHistory& attrs, Time time)
      : table_(table), attrs_(attrs), time_(time) {}

  std::optional<std::string_view> GetAttribute(
      std::string_view name) const override {
    Result<AttributeIndex> index = table_.Lookup(name);
    if (!index.ok()) return std::nullopt;
    return attrs_.Get(*index, time_);
  }

 private:
  const AttributeTable& table_;
  const AttributeHistory& attrs_;
  Time time_;
};

// Binds a compiled predicate's slots to one record at a time. Names
// are resolved to table indices once per query, so per-record
// evaluation is a direct attribute-history probe per referenced slot.
class CompiledRecordSource : public query::CompiledPredicate::SlotSource {
 public:
  CompiledRecordSource(const AttributeTable& table,
                       const query::CompiledPredicate& program, Time time)
      : time_(time) {
    ids_.reserve(program.slot_names().size());
    for (const std::string& name : program.slot_names()) {
      Result<AttributeIndex> index = table.Lookup(name);
      // A name no object ever carried can never yield a value.
      ids_.push_back(index.ok() ? *index : kUnknownAttribute);
    }
  }

  void Bind(const AttributeHistory* attrs) { attrs_ = attrs; }

  std::optional<std::string_view> GetSlot(size_t slot) const override {
    const AttributeIndex id = ids_[slot];
    if (id == kUnknownAttribute) return std::nullopt;
    return attrs_->Get(id, time_);
  }

 private:
  static constexpr AttributeIndex kUnknownAttribute = ~0ull;
  std::vector<AttributeIndex> ids_;
  const AttributeHistory* attrs_ = nullptr;
  Time time_;
};

// Intersects two sorted posting lists; `a` is the smaller. When the
// sizes are heavily skewed, gallop (exponential search) through `b`
// instead of merging, so the cost tracks |a| log |b|, not |a| + |b|.
std::vector<NodeIndex> IntersectPair(const std::vector<NodeIndex>& a,
                                     const std::vector<NodeIndex>& b) {
  std::vector<NodeIndex> out;
  if (a.empty() || b.empty()) return out;
  out.reserve(a.size());
  if (b.size() / a.size() >= 8) {
    auto from = b.begin();
    for (NodeIndex want : a) {
      size_t step = 1;
      auto bound = from;
      while (bound != b.end() && *bound < want) {
        from = bound;
        bound = static_cast<size_t>(b.end() - bound) > step ? bound + step
                                                            : b.end();
        step <<= 1;
      }
      from = std::lower_bound(from, bound, want);
      if (from == b.end()) break;
      if (*from == want) out.push_back(want);
    }
    return out;
  }
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Intersects posting lists in ascending size order, so the working set
// only shrinks.
std::vector<NodeIndex> IntersectPostings(
    std::vector<const std::vector<NodeIndex>*> postings) {
  std::sort(postings.begin(), postings.end(),
            [](const std::vector<NodeIndex>* a,
               const std::vector<NodeIndex>* b) {
              return a->size() < b->size();
            });
  std::vector<NodeIndex> out = *postings[0];
  for (size_t i = 1; i < postings.size() && !out.empty(); ++i) {
    out = IntersectPair(out, *postings[i]);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- lookup

const NodeRecord* GraphState::FindNode(ThreadId thread, const TxnOverlay* txn,
                                       NodeIndex index) const {
  if (txn != nullptr) {
    auto it = txn->records.nodes.find(index);
    if (it != txn->records.nodes.end()) return &it->second;
  }
  if (thread != kMainThread) {
    auto tit = threads_.find(thread);
    if (tit != threads_.end()) {
      auto it = tit->second.records.nodes.find(index);
      if (it != tit->second.records.nodes.end()) return &it->second;
    }
  }
  auto it = base_.nodes.find(index);
  return it == base_.nodes.end() ? nullptr : &it->second;
}

const LinkRecord* GraphState::FindLink(ThreadId thread, const TxnOverlay* txn,
                                       LinkIndex index) const {
  if (txn != nullptr) {
    auto it = txn->records.links.find(index);
    if (it != txn->records.links.end()) return &it->second;
  }
  if (thread != kMainThread) {
    auto tit = threads_.find(thread);
    if (tit != threads_.end()) {
      auto it = tit->second.records.links.find(index);
      if (it != tit->second.records.links.end()) return &it->second;
    }
  }
  auto it = base_.links.find(index);
  return it == base_.links.end() ? nullptr : &it->second;
}

const DemonHistory& GraphState::GraphDemons(const TxnOverlay* txn) const {
  if (txn != nullptr && txn->graph_demons.has_value()) {
    return *txn->graph_demons;
  }
  return graph_demons_;
}

void GraphState::ForEachNode(
    ThreadId thread, const TxnOverlay* txn,
    const std::function<void(const NodeRecord&)>& fn) const {
  std::map<NodeIndex, const NodeRecord*> merged;
  for (const auto& [index, record] : base_.nodes) merged[index] = &record;
  if (thread != kMainThread) {
    auto tit = threads_.find(thread);
    if (tit != threads_.end()) {
      for (const auto& [index, record] : tit->second.records.nodes) {
        merged[index] = &record;
      }
    }
  }
  if (txn != nullptr) {
    for (const auto& [index, record] : txn->records.nodes) {
      merged[index] = &record;
    }
  }
  for (const auto& [index, record] : merged) {
    (void)index;
    fn(*record);
  }
}

void GraphState::ForEachLink(
    ThreadId thread, const TxnOverlay* txn,
    const std::function<void(const LinkRecord&)>& fn) const {
  std::map<LinkIndex, const LinkRecord*> merged;
  for (const auto& [index, record] : base_.links) merged[index] = &record;
  if (thread != kMainThread) {
    auto tit = threads_.find(thread);
    if (tit != threads_.end()) {
      for (const auto& [index, record] : tit->second.records.links) {
        merged[index] = &record;
      }
    }
  }
  if (txn != nullptr) {
    for (const auto& [index, record] : txn->records.links) {
      merged[index] = &record;
    }
  }
  for (const auto& [index, record] : merged) {
    (void)index;
    fn(*record);
  }
}

// ----------------------------------------------------------- mutation

GraphState::RecordSet& GraphState::LevelFor(ThreadId thread, TxnOverlay* txn) {
  if (txn != nullptr) return txn->records;
  if (thread != kMainThread) return threads_[thread].records;
  return base_;
}

Result<NodeRecord*> GraphState::MutableNode(ThreadId thread, TxnOverlay* txn,
                                            NodeIndex index) {
  RecordSet& level = LevelFor(thread, txn);
  auto it = level.nodes.find(index);
  if (it != level.nodes.end()) return &it->second;
  // Copy-on-write from the level below.
  const NodeRecord* below = nullptr;
  if (txn != nullptr) {
    below = FindNode(thread, nullptr, index);
  } else if (thread != kMainThread) {
    auto bit = base_.nodes.find(index);
    below = bit == base_.nodes.end() ? nullptr : &bit->second;
  }
  if (below == nullptr) {
    return Status::NotFound("node " + std::to_string(index) +
                            " does not exist");
  }
  auto [pos, inserted] = level.nodes.emplace(index, *below);
  (void)inserted;
  return &pos->second;
}

Result<LinkRecord*> GraphState::MutableLink(ThreadId thread, TxnOverlay* txn,
                                            LinkIndex index) {
  RecordSet& level = LevelFor(thread, txn);
  auto it = level.links.find(index);
  if (it != level.links.end()) return &it->second;
  const LinkRecord* below = nullptr;
  if (txn != nullptr) {
    below = FindLink(thread, nullptr, index);
  } else if (thread != kMainThread) {
    auto bit = base_.links.find(index);
    below = bit == base_.links.end() ? nullptr : &bit->second;
  }
  if (below == nullptr) {
    return Status::NotFound("link " + std::to_string(index) +
                            " does not exist");
  }
  auto [pos, inserted] = level.links.emplace(index, *below);
  (void)inserted;
  return &pos->second;
}

void GraphState::AddMinorVersion(NodeRecord* node, Time t,
                                 std::string explanation) {
  if (!node->minor_versions.empty() &&
      node->minor_versions.back().time == t) {
    return;  // one minor version per timestamp is enough
  }
  node->minor_versions.push_back(VersionEntry{t, std::move(explanation)});
}

Status GraphState::Apply(const Op& op, TxnOverlay* txn) {
  Status status;
  switch (op.kind) {
    case OpKind::kAddNode:
      status = ApplyAddNode(op, txn);
      break;
    case OpKind::kDeleteNode:
      status = ApplyDeleteNode(op, txn);
      break;
    case OpKind::kAddLink:
      status = ApplyAddLink(op, txn);
      break;
    case OpKind::kDeleteLink:
      status = ApplyDeleteLink(op, txn);
      break;
    case OpKind::kModifyNode:
      status = ApplyModifyNode(op, txn);
      break;
    case OpKind::kSetNodeAttribute: {
      NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * node,
                               MutableNode(op.thread, txn, op.node));
      if (!node->ExistsAt(0)) {
        return Status::NotFound("node " + std::to_string(op.node) +
                                " is deleted");
      }
      if (!attributes_.ExistedAt(op.attr, 0)) {
        return Status::NotFound("attribute index " + std::to_string(op.attr) +
                                " is not defined");
      }
      std::optional<std::string> previous;
      if (std::optional<std::string_view> current =
              node->attributes.Get(op.attr, 0)) {
        previous = std::string(*current);
      }
      node->attributes.Set(op.attr, op.time, op.value, node->is_archive);
      AddMinorVersion(node, op.time, "setAttribute");
      StageIndexDelta(op.thread, txn, op.node, op.attr, std::move(previous),
                      op.value);
      break;
    }
    case OpKind::kDeleteNodeAttribute: {
      NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * node,
                               MutableNode(op.thread, txn, op.node));
      if (!node->ExistsAt(0)) {
        return Status::NotFound("node " + std::to_string(op.node) +
                                " is deleted");
      }
      std::optional<std::string> previous;
      if (std::optional<std::string_view> current =
              node->attributes.Get(op.attr, 0)) {
        previous = std::string(*current);
      }
      node->attributes.Delete(op.attr, op.time, node->is_archive);
      AddMinorVersion(node, op.time, "deleteAttribute");
      StageIndexDelta(op.thread, txn, op.node, op.attr, std::move(previous),
                      std::nullopt);
      break;
    }
    case OpKind::kSetLinkAttribute:
    case OpKind::kDeleteLinkAttribute: {
      NEPTUNE_ASSIGN_OR_RETURN(LinkRecord * link,
                               MutableLink(op.thread, txn, op.link));
      if (!link->ExistsAt(0)) {
        return Status::NotFound("link " + std::to_string(op.link) +
                                " is deleted");
      }
      // "If the link LinkIndex is attached to an archive then creates
      // a new version of the attribute value."
      bool versioned = false;
      for (NodeIndex end : {link->from.node, link->to.node}) {
        const NodeRecord* node = FindNode(op.thread, txn, end);
        if (node != nullptr && node->is_archive) versioned = true;
      }
      if (op.kind == OpKind::kSetLinkAttribute) {
        if (!attributes_.ExistedAt(op.attr, 0)) {
          return Status::NotFound("attribute index " +
                                  std::to_string(op.attr) +
                                  " is not defined");
        }
        link->attributes.Set(op.attr, op.time, op.value, versioned);
      } else {
        link->attributes.Delete(op.attr, op.time, versioned);
      }
      break;
    }
    case OpKind::kInternAttribute: {
      // Interning is append-only and logged as its own transaction, so
      // it bypasses the txn overlay by design.
      NEPTUNE_ASSIGN_OR_RETURN(AttributeIndex assigned,
                               attributes_.Intern(op.extra, op.time, op.attr));
      (void)assigned;
      break;
    }
    case OpKind::kChangeNodeProtection: {
      NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * node,
                               MutableNode(op.thread, txn, op.node));
      node->protections = static_cast<uint32_t>(op.arg);
      AddMinorVersion(node, op.time, "changeProtection");
      break;
    }
    case OpKind::kSetGraphDemon: {
      if (txn != nullptr) {
        if (!txn->graph_demons.has_value()) {
          txn->graph_demons = graph_demons_;
        }
        txn->graph_demons->Set(op.event, op.time, op.value);
      } else {
        graph_demons_.Set(op.event, op.time, op.value);
      }
      break;
    }
    case OpKind::kSetNodeDemon: {
      NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * node,
                               MutableNode(op.thread, txn, op.node));
      if (!node->ExistsAt(0)) {
        return Status::NotFound("node " + std::to_string(op.node) +
                                " is deleted");
      }
      node->demons.Set(op.event, op.time, op.value);
      AddMinorVersion(node, op.time, "setDemon");
      break;
    }
    case OpKind::kCreateContext: {
      const ThreadId id = op.arg;
      if (id == kMainThread || threads_.count(id) != 0) {
        return Status::AlreadyExists("version thread " + std::to_string(id) +
                                     " already exists");
      }
      ThreadState thread;
      thread.id = id;
      thread.name = op.extra;
      thread.branched_at = op.time;
      threads_.emplace(id, std::move(thread));
      if (id >= next_thread_) next_thread_ = id + 1;
      break;
    }
    case OpKind::kMergeContext:
      status = ApplyMergeContext(op);
      break;
    case OpKind::kPruneHistory:
      // Direct-to-base maintenance op (like merge); op.arg carries the
      // prune horizon.
      PruneHistoryBefore(op.arg);
      break;
  }
  if (status.ok()) {
    clock_.AdvanceTo(op.time);
    ++mutation_epoch_;  // invalidates the lazy attribute index
  }
  return status;
}

Status GraphState::ApplyAddNode(const Op& op, TxnOverlay* txn) {
  if (FindNode(op.thread, txn, op.node) != nullptr) {
    return Status::AlreadyExists("node " + std::to_string(op.node) +
                                 " already exists");
  }
  NodeRecord node;
  node.index = op.node;
  node.is_archive = op.flag;
  node.protections = op.arg != 0 ? static_cast<uint32_t>(op.arg) : 0644;
  node.created = op.time;
  node.contents = delta::VersionChain(op.flag
                                          ? delta::ChainMode::kBackwardDelta
                                          : delta::ChainMode::kCurrentOnly);
  node.contents.set_keyframe_interval(keyframe_interval_);
  // Seed the initial (empty) version so getNodeTimeStamp and the
  // modifyNode optimistic check are uniform from birth.
  NEPTUNE_RETURN_IF_ERROR(node.contents.Append(op.time, "", "created"));
  LevelFor(op.thread, txn).nodes.emplace(op.node, std::move(node));
  if (op.node >= next_node_) next_node_ = op.node + 1;
  return Status::OK();
}

Status GraphState::ApplyDeleteNode(const Op& op, TxnOverlay* txn) {
  NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * node,
                           MutableNode(op.thread, txn, op.node));
  if (!node->ExistsAt(0)) {
    return Status::NotFound("node " + std::to_string(op.node) +
                            " is already deleted");
  }
  node->deleted = op.time;
  // The node leaves every posting list it was on.
  for (const auto& [attr, value] : node->attributes.GetAll(0)) {
    StageIndexDelta(op.thread, txn, op.node, attr, std::string(value),
                    std::nullopt);
  }
  // "All links into or out of the node are deleted."
  std::vector<LinkIndex> attached = node->out_links;
  attached.insert(attached.end(), node->in_links.begin(),
                  node->in_links.end());
  for (LinkIndex index : attached) {
    Result<LinkRecord*> link = MutableLink(op.thread, txn, index);
    if (!link.ok()) continue;  // never materialized in this thread
    if (!(*link)->ExistsAt(0)) continue;
    (*link)->deleted = op.time;
    // The surviving endpoint gets a minor version for the lost link.
    const NodeIndex other = (*link)->from.node == op.node
                                ? (*link)->to.node
                                : (*link)->from.node;
    if (other != op.node) {
      Result<NodeRecord*> other_node = MutableNode(op.thread, txn, other);
      if (other_node.ok() && (*other_node)->ExistsAt(0)) {
        AddMinorVersion(*other_node, op.time, "deleteLink");
      }
    }
  }
  return Status::OK();
}

Status GraphState::ApplyAddLink(const Op& op, TxnOverlay* txn) {
  if (FindLink(op.thread, txn, op.link) != nullptr) {
    return Status::AlreadyExists("link " + std::to_string(op.link) +
                                 " already exists");
  }
  // "The from and to nodes must exist at their respective times."
  for (const LinkPt* pt : {&op.from, &op.to}) {
    const NodeRecord* node = FindNode(op.thread, txn, pt->node);
    if (node == nullptr || !node->ExistsAt(pt->time)) {
      return Status::NotFound("link endpoint node " +
                              std::to_string(pt->node) +
                              " does not exist at time " +
                              std::to_string(pt->time));
    }
  }
  LinkRecord link;
  link.index = op.link;
  link.created = op.time;
  auto make_end = [&op](const LinkPt& pt) {
    LinkEnd end;
    end.node = pt.node;
    end.track_current = pt.track_current;
    end.pinned_time = pt.track_current ? 0 : pt.time;
    end.positions.emplace_back(op.time, pt.position);
    return end;
  };
  link.from = make_end(op.from);
  link.to = make_end(op.to);
  LevelFor(op.thread, txn).links.emplace(op.link, std::move(link));
  if (op.link >= next_link_) next_link_ = op.link + 1;

  NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * from_node,
                           MutableNode(op.thread, txn, op.from.node));
  from_node->out_links.push_back(op.link);
  AddMinorVersion(from_node, op.time, "addLink");
  NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * to_node,
                           MutableNode(op.thread, txn, op.to.node));
  to_node->in_links.push_back(op.link);
  AddMinorVersion(to_node, op.time, "addLink");
  return Status::OK();
}

Status GraphState::ApplyDeleteLink(const Op& op, TxnOverlay* txn) {
  NEPTUNE_ASSIGN_OR_RETURN(LinkRecord * link,
                           MutableLink(op.thread, txn, op.link));
  if (!link->ExistsAt(0)) {
    return Status::NotFound("link " + std::to_string(op.link) +
                            " is already deleted");
  }
  link->deleted = op.time;
  for (NodeIndex end : {link->from.node, link->to.node}) {
    Result<NodeRecord*> node = MutableNode(op.thread, txn, end);
    if (node.ok() && (*node)->ExistsAt(0)) {
      AddMinorVersion(*node, op.time, "deleteLink");
    }
  }
  return Status::OK();
}

Status GraphState::ApplyModifyNode(const Op& op, TxnOverlay* txn) {
  NEPTUNE_ASSIGN_OR_RETURN(NodeRecord * node,
                           MutableNode(op.thread, txn, op.node));
  if (!node->ExistsAt(0)) {
    return Status::NotFound("node " + std::to_string(op.node) +
                            " is deleted");
  }
  if ((node->protections & 0222) == 0) {
    return Status::PermissionDenied("node " + std::to_string(op.node) +
                                    " is write-protected");
  }
  // Optimistic check-in: "Time must be equal to the version time of
  // the current version of the node." op.arg carries the caller's
  // expected time.
  if (op.arg != node->contents.CurrentTime()) {
    return Status::Conflict(
        "node " + std::to_string(op.node) + " was modified: expected time " +
        std::to_string(op.arg) + ", current is " +
        std::to_string(node->contents.CurrentTime()));
  }
  // "There must be a LinkPt for each link associated with the current
  // version of the node": every live automatic-update attachment needs
  // an entry. Pinned ends are frozen at their version and need none.
  size_t live_attachments = 0;
  for (bool source_end : {true, false}) {
    const std::vector<LinkIndex>& list =
        source_end ? node->out_links : node->in_links;
    for (LinkIndex index : list) {
      const LinkRecord* link = FindLink(op.thread, txn, index);
      if (link == nullptr || !link->ExistsAt(0)) continue;
      const LinkEnd& end = source_end ? link->from : link->to;
      if (end.track_current) ++live_attachments;
    }
  }
  if (op.attachments.size() < live_attachments) {
    return Status::InvalidArgument(
        "modifyNode needs a LinkPt for each of the " +
        std::to_string(live_attachments) + " attached links; got " +
        std::to_string(op.attachments.size()));
  }
  // Attachment updates. In a kModifyNode op each `attachments` entry
  // reuses LinkPt fields as: node = LinkIndex, track_current =
  // is_source_end, position = new offset (see ops.h). Validate all of
  // them before mutating anything so a failed op leaves the overlay
  // untouched.
  for (const LinkPt& att : op.attachments) {
    const LinkRecord* link = FindLink(op.thread, txn, att.node);
    if (link == nullptr) {
      return Status::NotFound("attachment link " + std::to_string(att.node) +
                              " does not exist");
    }
    const LinkEnd& end = att.track_current ? link->from : link->to;
    if (link->ExistsAt(0) && end.node != op.node) {
      return Status::InvalidArgument(
          "attachment for link " + std::to_string(att.node) +
          " does not reference node " + std::to_string(op.node));
    }
  }
  // Stamp the engine's interval every modify so chains from snapshots
  // that predate the keyframe option pick it up too.
  node->contents.set_keyframe_interval(keyframe_interval_);
  NEPTUNE_RETURN_IF_ERROR(node->contents.Append(op.time, op.value, op.extra));
  for (const LinkPt& att : op.attachments) {
    NEPTUNE_ASSIGN_OR_RETURN(LinkRecord * link,
                             MutableLink(op.thread, txn, att.node));
    if (!link->ExistsAt(0)) continue;
    LinkEnd& end = att.track_current ? link->from : link->to;
    // "creates a new version of each of its link attachments whose
    // Position has changed."
    if (end.PositionAt(0) != att.position) {
      end.SetPosition(op.time, att.position, node->is_archive);
    }
  }
  return Status::OK();
}

Status GraphState::ApplyMergeContext(const Op& op) {
  const ThreadId source = op.arg;
  const bool force = op.flag;
  auto tit = threads_.find(source);
  if (tit == threads_.end()) {
    return Status::NotFound("version thread " + std::to_string(source) +
                            " does not exist");
  }
  ThreadState& thread = tit->second;
  if (!force) {
    // Validate everything before mutating anything: merge is atomic.
    for (const auto& [index, record] : thread.records.nodes) {
      auto bit = base_.nodes.find(index);
      if (bit != base_.nodes.end() &&
          NodeLastModified(bit->second) > thread.branched_at) {
        return Status::Conflict("node " + std::to_string(index) +
                                " changed in the main thread since this "
                                "context branched");
      }
      (void)record;
    }
    for (const auto& [index, record] : thread.records.links) {
      auto bit = base_.links.find(index);
      if (bit != base_.links.end() &&
          LinkLastModified(bit->second) > thread.branched_at) {
        return Status::Conflict("link " + std::to_string(index) +
                                " changed in the main thread since this "
                                "context branched");
      }
      (void)record;
    }
  }
  for (auto& [index, record] : thread.records.nodes) {
    base_.nodes.insert_or_assign(index, std::move(record));
  }
  for (auto& [index, record] : thread.records.links) {
    base_.links.insert_or_assign(index, std::move(record));
  }
  thread.records.nodes.clear();
  thread.records.links.clear();
  thread.branched_at = op.time;  // context continues from the merge point
  // The merge folded whole records into the base without per-attribute
  // deltas; the index can only recover by rebuilding.
  index_needs_rebuild_ = true;
  index_deltas_.clear();
  return Status::OK();
}

void GraphState::StageIndexDelta(ThreadId thread, TxnOverlay* txn,
                                 NodeIndex node, AttributeIndex attr,
                                 std::optional<std::string> old_value,
                                 std::optional<std::string> new_value) {
  // Only committed main-thread state is indexed (see IndexEligible).
  if (!attribute_index_enabled_ || thread != kMainThread) return;
  if (old_value == new_value) return;
  if (txn != nullptr) {
    if (txn->index_overflow) return;
    if (txn->index_deltas.size() >= kMaxPendingIndexDeltas) {
      txn->index_deltas.clear();
      txn->index_overflow = true;
      return;
    }
    txn->index_deltas.push_back(AttributeIndexDelta{
        node, attr, std::move(old_value), std::move(new_value)});
    return;
  }
  // Direct apply (WAL replay and maintenance ops): worth tracking only
  // when a built index would otherwise go stale — an unbuilt or
  // already-invalidated index rebuilds on the next query regardless.
  if (!node_index_.built() || index_needs_rebuild_) return;
  if (index_deltas_.size() >= kMaxPendingIndexDeltas) {
    index_deltas_.clear();
    index_needs_rebuild_ = true;
    return;
  }
  index_deltas_.push_back(AttributeIndexDelta{
      node, attr, std::move(old_value), std::move(new_value)});
}

void GraphState::CommitOverlay(ThreadId thread, TxnOverlay&& txn) {
  if (txn.graph_demons.has_value()) {
    graph_demons_ = std::move(*txn.graph_demons);
  }
  RecordSet& target =
      thread == kMainThread ? base_ : threads_[thread].records;
  for (auto& [index, record] : txn.records.nodes) {
    target.nodes.insert_or_assign(index, std::move(record));
  }
  for (auto& [index, record] : txn.records.links) {
    target.links.insert_or_assign(index, std::move(record));
  }
  // Hand the staged index deltas to the pending queue. An unbuilt (or
  // already-invalidated) index needs none of this: the next query
  // rebuilds from the post-commit base anyway.
  if (thread == kMainThread && attribute_index_enabled_ &&
      node_index_.built() && !index_needs_rebuild_) {
    if (txn.index_overflow ||
        index_deltas_.size() + txn.index_deltas.size() >
            kMaxPendingIndexDeltas) {
      index_deltas_.clear();
      index_needs_rebuild_ = true;
    } else {
      std::move(txn.index_deltas.begin(), txn.index_deltas.end(),
                std::back_inserter(index_deltas_));
    }
  }
  ++mutation_epoch_;
}

// ------------------------------------------------------------ queries

bool GraphState::EvaluateOnNode(const NodeRecord& node, Time time,
                                const query::Predicate& pred) const {
  if (pred.IsTriviallyTrue()) return true;
  RecordAttributeSource source(attributes_, node.attributes, time);
  return pred.Evaluate(source);
}

bool GraphState::EvaluateOnLink(const LinkRecord& link, Time time,
                                const query::Predicate& pred) const {
  if (pred.IsTriviallyTrue()) return true;
  RecordAttributeSource source(attributes_, link.attributes, time);
  return pred.Evaluate(source);
}

std::vector<std::optional<std::string>> GraphState::AttributeValuesFor(
    const AttributeHistory& attrs, const AttributeRequest& request,
    Time time) const {
  std::vector<std::optional<std::string>> out;
  out.reserve(request.size());
  for (AttributeIndex attr : request) {
    std::optional<std::string_view> value = attrs.Get(attr, time);
    if (value.has_value()) {
      out.emplace_back(std::string(*value));
    } else {
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

Result<SubGraph> GraphState::Linearize(ThreadId thread, const TxnOverlay* txn,
                                       NodeIndex start, Time time,
                                       const query::Predicate& node_pred,
                                       const query::Predicate& link_pred,
                                       const AttributeRequest& node_attrs,
                                       const AttributeRequest& link_attrs)
    const {
  const NodeRecord* start_node = FindNode(thread, txn, start);
  if (start_node == nullptr || !start_node->ExistsAt(time)) {
    return Status::NotFound("start node " + std::to_string(start) +
                            " does not exist at time " +
                            std::to_string(time));
  }
  SubGraph out;
  if (!EvaluateOnNode(*start_node, time, node_pred)) return out;

  std::set<NodeIndex> visited;
  std::set<LinkIndex> emitted_links;

  // Recursive DFS via explicit lambda (graphs can be cyclic).
  std::function<void(const NodeRecord&)> visit =
      [&](const NodeRecord& node) {
        visited.insert(node.index);
        out.nodes.push_back(SubGraphNode{
            node.index,
            AttributeValuesFor(node.attributes, node_attrs, time)});
        // Out-links "ordered by the links' offsets within the node".
        struct Candidate {
          uint64_t position;
          LinkIndex link;
        };
        std::vector<Candidate> candidates;
        for (LinkIndex index : node.out_links) {
          const LinkRecord* link = FindLink(thread, txn, index);
          if (link == nullptr || !link->ExistsAt(time)) continue;
          candidates.push_back(
              Candidate{link->from.PositionAt(time), index});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate& a, const Candidate& b) {
                    return a.position != b.position ? a.position < b.position
                                                    : a.link < b.link;
                  });
        for (const Candidate& c : candidates) {
          const LinkRecord* link = FindLink(thread, txn, c.link);
          if (!EvaluateOnLink(*link, time, link_pred)) continue;
          const NodeRecord* target = FindNode(thread, txn, link->to.node);
          if (target == nullptr || !target->ExistsAt(time)) continue;
          if (!EvaluateOnNode(*target, time, node_pred)) continue;
          // The link connects two result nodes: emit it (once).
          if (emitted_links.insert(c.link).second) {
            out.links.push_back(SubGraphLink{
                c.link, link->from.node, link->to.node,
                AttributeValuesFor(link->attributes, link_attrs, time)});
          }
          if (visited.count(target->index) == 0) visit(*target);
        }
      };
  visit(*start_node);
  return out;
}

void GraphState::MaintainIndexLocked(QueryPlan* plan) const {
  if (!node_index_.built() || index_needs_rebuild_) {
    node_index_.Rebuild(base_.nodes, mutation_epoch_);
    index_needs_rebuild_ = false;
    index_deltas_.clear();
    plan->rebuilt = true;
    return;
  }
  if (!index_deltas_.empty()) {
    for (const AttributeIndexDelta& delta : index_deltas_) {
      node_index_.ApplyDelta(delta);
    }
    plan->applied_deltas = index_deltas_.size();
    index_deltas_.clear();
  }
  node_index_.MarkFresh(mutation_epoch_);
}

Result<SubGraph> GraphState::Query(ThreadId thread, const TxnOverlay* txn,
                                   Time time,
                                   const query::Predicate& node_pred,
                                   const query::Predicate& link_pred,
                                   const AttributeRequest& node_attrs,
                                   const AttributeRequest& link_attrs,
                                   QueryPlan* plan_out,
                                   bool force_scan) const {
  QueryPlan plan;
  plan.eligible = !force_scan && attribute_index_enabled_ &&
                  IndexEligible(thread, txn, time);
  SubGraph out;
  std::unordered_set<NodeIndex> selected;

  // One compile per query; per-record evaluation is then a flat
  // program over pre-resolved attribute slots.
  const query::CompiledPredicate node_prog =
      query::CompiledPredicate::Compile(node_pred);
  const query::CompiledPredicate link_prog =
      query::CompiledPredicate::Compile(link_pred);
  CompiledRecordSource node_src(attributes_, node_prog, time);
  CompiledRecordSource link_src(attributes_, link_prog, time);

  // Plan: probe the index for every equality conjunct, then take one
  // posting list or the intersection of several (see attribute_index.h
  // for why the references stay valid after unlock).
  bool use_index = false;
  std::vector<NodeIndex> intersected;
  const std::vector<NodeIndex>* candidates = nullptr;
  if (plan.eligible) {
    const auto conjuncts = node_pred.EqualityConjuncts();
    plan.conjuncts = static_cast<uint32_t>(conjuncts.size());
    if (!conjuncts.empty()) {
      std::lock_guard<std::mutex> index_lock(*node_index_mu_);
      MaintainIndexLocked(&plan);
      use_index = true;
      bool provably_empty = false;
      std::vector<const std::vector<NodeIndex>*> postings;
      postings.reserve(conjuncts.size());
      for (const auto& [name, value] : conjuncts) {
        Result<AttributeIndex> attr = attributes_.Lookup(name);
        if (!attr.ok()) {
          // The conjunct references an attribute no object ever
          // carried: nothing can match the predicate.
          provably_empty = true;
          break;
        }
        postings.push_back(&node_index_.Lookup(*attr, value));
      }
      if (provably_empty) {
        plan.kind = conjuncts.size() > 1 ? QueryPlan::Kind::kIntersect
                                         : QueryPlan::Kind::kIndex;
        candidates = &intersected;  // empty
      } else if (postings.size() == 1) {
        plan.kind = QueryPlan::Kind::kIndex;
        candidates = postings[0];
      } else {
        plan.kind = QueryPlan::Kind::kIntersect;
        intersected = IntersectPostings(std::move(postings));
        candidates = &intersected;
      }
    }
  }

  if (use_index) {
    plan.candidates = candidates->size();
    for (NodeIndex index : *candidates) {
      auto it = base_.nodes.find(index);
      if (it == base_.nodes.end()) continue;
      const NodeRecord& node = it->second;
      if (!node.ExistsAt(time)) continue;
      // Residual check: candidates satisfy their conjuncts by index
      // construction, but the formula may carry more than that.
      ++plan.residual_evals;
      node_src.Bind(&node.attributes);
      if (!node_prog.Evaluate(node_src)) continue;
      selected.insert(index);
      out.nodes.push_back(SubGraphNode{
          index, AttributeValuesFor(node.attributes, node_attrs, time)});
    }
  } else {
    plan.kind = QueryPlan::Kind::kScan;
    const bool trivial = node_prog.IsTriviallyTrue();
    ForEachNode(thread, txn, [&](const NodeRecord& node) {
      if (!node.ExistsAt(time)) return;
      ++plan.candidates;
      if (!trivial) {
        ++plan.residual_evals;
        node_src.Bind(&node.attributes);
        if (!node_prog.Evaluate(node_src)) return;
      }
      selected.insert(node.index);
      out.nodes.push_back(SubGraphNode{
          node.index, AttributeValuesFor(node.attributes, node_attrs, time)});
    });
  }

  const bool link_trivial = link_prog.IsTriviallyTrue();
  auto emit_link = [&](const LinkRecord& link) {
    if (!link.ExistsAt(time)) return;
    if (selected.count(link.from.node) == 0 ||
        selected.count(link.to.node) == 0) {
      return;
    }
    if (!link_trivial) {
      link_src.Bind(&link.attributes);
      if (!link_prog.Evaluate(link_src)) return;
    }
    out.links.push_back(
        SubGraphLink{link.index, link.from.node, link.to.node,
                     AttributeValuesFor(link.attributes, link_attrs, time)});
  };
  if (use_index) {
    // Indexed queries only need links attached to selected nodes: a
    // qualifying link's source end is a selected node, so walking the
    // out-link lists covers every candidate without an O(links) scan.
    // Sorting keeps the scan path's ascending-index output order.
    std::vector<LinkIndex> link_candidates;
    for (const SubGraphNode& selected_node : out.nodes) {
      auto it = base_.nodes.find(selected_node.node);
      link_candidates.insert(link_candidates.end(),
                             it->second.out_links.begin(),
                             it->second.out_links.end());
    }
    std::sort(link_candidates.begin(), link_candidates.end());
    link_candidates.erase(
        std::unique(link_candidates.begin(), link_candidates.end()),
        link_candidates.end());
    for (LinkIndex index : link_candidates) {
      auto it = base_.links.find(index);
      if (it != base_.links.end()) emit_link(it->second);
    }
  } else {
    ForEachLink(thread, txn, emit_link);
  }

  plan.nodes_matched = out.nodes.size();
  plan.links_matched = out.links.size();
  if (plan_out != nullptr) *plan_out = plan;
  return out;
}

std::vector<std::string> GraphState::AttributeValuesAt(ThreadId thread,
                                                       const TxnOverlay* txn,
                                                       AttributeIndex attr,
                                                       Time time) const {
  std::set<std::string> values;
  ForEachNode(thread, txn, [&](const NodeRecord& node) {
    if (!node.ExistsAt(time)) return;
    std::optional<std::string_view> value = node.attributes.Get(attr, time);
    if (value.has_value()) values.emplace(*value);
  });
  ForEachLink(thread, txn, [&](const LinkRecord& link) {
    if (!link.ExistsAt(time)) return;
    std::optional<std::string_view> value = link.attributes.Get(attr, time);
    if (value.has_value()) values.emplace(*value);
  });
  return std::vector<std::string>(values.begin(), values.end());
}

// ------------------------------------------------------------ threads

const GraphState::ThreadState* GraphState::FindThread(ThreadId thread) const {
  auto it = threads_.find(thread);
  return it == threads_.end() ? nullptr : &it->second;
}

std::vector<ContextInfo> GraphState::ListThreads() const {
  std::vector<ContextInfo> out;
  out.push_back(ContextInfo{kMainThread, "main", 0});
  for (const auto& [id, thread] : threads_) {
    out.push_back(ContextInfo{id, thread.name, thread.branched_at});
  }
  return out;
}

// ------------------------------------------------------------ helpers

Time GraphState::NodeLastModified(const NodeRecord& node) {
  Time last = std::max(node.created, node.deleted);
  last = std::max(last, node.contents.CurrentTime());
  if (!node.minor_versions.empty()) {
    last = std::max(last, node.minor_versions.back().time);
  }
  last = std::max(last, node.attributes.LastTime());
  return last;
}

Time GraphState::LinkLastModified(const LinkRecord& link) {
  Time last = std::max(link.created, link.deleted);
  for (const LinkEnd* end : {&link.from, &link.to}) {
    if (!end->positions.empty()) {
      last = std::max(last, end->positions.back().first);
    }
  }
  last = std::max(last, link.attributes.LastTime());
  return last;
}

GraphState::Stats GraphState::ComputeStats() const {
  Stats stats;
  stats.total_node_records = base_.nodes.size();
  stats.total_link_records = base_.links.size();
  for (const auto& [index, node] : base_.nodes) {
    (void)index;
    if (node.ExistsAt(0)) ++stats.node_count;
  }
  for (const auto& [index, link] : base_.links) {
    (void)index;
    if (link.ExistsAt(0)) ++stats.link_count;
  }
  stats.thread_count = threads_.size();
  stats.attribute_count = attributes_.size();
  return stats;
}

// ------------------------------------------------------------ fsck

std::vector<std::string> GraphState::CheckIntegrity() const {
  std::vector<std::string> problems;
  auto report = [&problems](std::string message) {
    problems.push_back(std::move(message));
  };

  NodeIndex max_node = 0;
  LinkIndex max_link = 0;

  for (const auto& [index, node] : base_.nodes) {
    max_node = std::max(max_node, index);
    if (node.index != index) {
      report("node " + std::to_string(index) + " stored under wrong key");
    }
    if (node.created == 0) {
      report("node " + std::to_string(index) + " has no creation time");
    }
    // Version times strictly increase.
    Time prev = 0;
    for (const auto& version : node.contents.versions()) {
      if (version.time <= prev) {
        report("node " + std::to_string(index) +
               " version times not strictly increasing");
        break;
      }
      prev = version.time;
    }
    // Attribute indices must be defined in the table.
    for (const auto& [attr, value] : node.attributes.GetAll(0)) {
      (void)value;
      if (!attributes_.ExistedAt(attr, 0)) {
        report("node " + std::to_string(index) +
               " carries undefined attribute index " + std::to_string(attr));
      }
    }
    // Link lists must reference existing links that point back here.
    for (bool source_end : {true, false}) {
      const auto& list = source_end ? node.out_links : node.in_links;
      for (LinkIndex link_index : list) {
        auto it = base_.links.find(link_index);
        if (it == base_.links.end()) {
          report("node " + std::to_string(index) + " lists missing link " +
                 std::to_string(link_index));
          continue;
        }
        const LinkEnd& end = source_end ? it->second.from : it->second.to;
        if (end.node != index) {
          report("link " + std::to_string(link_index) +
                 " does not attach back to node " + std::to_string(index));
        }
      }
    }
  }

  for (const auto& [index, link] : base_.links) {
    max_link = std::max(max_link, index);
    if (link.index != index) {
      report("link " + std::to_string(index) + " stored under wrong key");
    }
    for (const LinkEnd* end : {&link.from, &link.to}) {
      auto it = base_.nodes.find(end->node);
      if (it == base_.nodes.end()) {
        report("link " + std::to_string(index) +
               " references missing node " + std::to_string(end->node));
        continue;
      }
      const bool is_from = end == &link.from;
      const auto& list = is_from ? it->second.out_links : it->second.in_links;
      if (std::find(list.begin(), list.end(), index) == list.end()) {
        report("node " + std::to_string(end->node) + " does not list link " +
               std::to_string(index));
      }
      if (end->positions.empty()) {
        report("link " + std::to_string(index) +
               " has an end with no attachment offset");
      }
    }
    if (link.created == 0) {
      report("link " + std::to_string(index) + " has no creation time");
    }
  }

  if (max_node >= next_node_) {
    report("node counter " + std::to_string(next_node_) +
           " not above max node " + std::to_string(max_node));
  }
  if (max_link >= next_link_) {
    report("link counter " + std::to_string(next_link_) +
           " not above max link " + std::to_string(max_link));
  }
  for (const auto& [id, thread] : threads_) {
    if (id != thread.id) {
      report("thread " + std::to_string(id) + " stored under wrong key");
    }
    if (thread.branched_at > clock_.Last()) {
      report("thread " + std::to_string(id) + " branched in the future");
    }
  }
  return problems;
}

size_t GraphState::PruneHistoryBefore(Time before) {
  size_t touched = 0;
  for (auto& [index, node] : base_.nodes) {
    (void)index;
    size_t dropped = node.contents.PruneBefore(before);
    dropped += node.attributes.PruneBefore(before);
    const size_t minors_before = node.minor_versions.size();
    node.minor_versions.erase(
        std::remove_if(node.minor_versions.begin(), node.minor_versions.end(),
                       [before](const VersionEntry& v) {
                         return v.time < before;
                       }),
        node.minor_versions.end());
    dropped += minors_before - node.minor_versions.size();
    if (dropped > 0) ++touched;
  }
  for (auto& [index, link] : base_.links) {
    (void)index;
    size_t dropped = link.attributes.PruneBefore(before);
    for (LinkEnd* end : {&link.from, &link.to}) {
      auto keep = std::upper_bound(
          end->positions.begin(), end->positions.end(), before,
          [](Time t, const std::pair<Time, uint64_t>& p) {
            return t < p.first;
          });
      if (keep != end->positions.begin()) {
        --keep;  // the offset in effect at `before` stays
        dropped += static_cast<size_t>(
            std::distance(end->positions.begin(), keep));
        end->positions.erase(end->positions.begin(), keep);
      }
    }
    if (dropped > 0) ++touched;
  }
  // Prune rewrites histories wholesale; no per-attribute deltas exist,
  // so the index must rebuild on the next query.
  index_needs_rebuild_ = true;
  index_deltas_.clear();
  ++mutation_epoch_;
  return touched;
}

// -------------------------------------------------------------- codec

namespace {

void EncodeRecordSet(const GraphState::RecordSet& set, std::string* out) {
  // Deterministic order: ascending index.
  std::vector<NodeIndex> node_ids;
  node_ids.reserve(set.nodes.size());
  for (const auto& [index, record] : set.nodes) {
    (void)record;
    node_ids.push_back(index);
  }
  std::sort(node_ids.begin(), node_ids.end());
  PutVarint64(out, node_ids.size());
  for (NodeIndex id : node_ids) set.nodes.at(id).EncodeTo(out);

  std::vector<LinkIndex> link_ids;
  link_ids.reserve(set.links.size());
  for (const auto& [index, record] : set.links) {
    (void)record;
    link_ids.push_back(index);
  }
  std::sort(link_ids.begin(), link_ids.end());
  PutVarint64(out, link_ids.size());
  for (LinkIndex id : link_ids) set.links.at(id).EncodeTo(out);
}

Status DecodeRecordSet(std::string_view* in, GraphState::RecordSet* set) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("record set: truncated node count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    NEPTUNE_ASSIGN_OR_RETURN(NodeRecord node, NodeRecord::DecodeFrom(in));
    const NodeIndex index = node.index;
    set->nodes.emplace(index, std::move(node));
  }
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("record set: truncated link count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    NEPTUNE_ASSIGN_OR_RETURN(LinkRecord link, LinkRecord::DecodeFrom(in));
    const LinkIndex index = link.index;
    set->links.emplace(index, std::move(link));
  }
  return Status::OK();
}

}  // namespace

void GraphState::EncodeTo(std::string* out) const {
  attributes_.EncodeTo(out);
  graph_demons_.EncodeTo(out);
  PutVarint64(out, clock_.Last());
  PutVarint64(out, next_node_);
  PutVarint64(out, next_link_);
  PutVarint64(out, next_thread_);
  EncodeRecordSet(base_, out);
  PutVarint64(out, threads_.size());
  for (const auto& [id, thread] : threads_) {
    PutVarint64(out, id);
    PutLengthPrefixed(out, thread.name);
    PutVarint64(out, thread.branched_at);
    EncodeRecordSet(thread.records, out);
  }
}

Result<GraphState> GraphState::DecodeFrom(std::string_view in) {
  GraphState out;
  NEPTUNE_ASSIGN_OR_RETURN(out.attributes_, AttributeTable::DecodeFrom(&in));
  NEPTUNE_ASSIGN_OR_RETURN(out.graph_demons_, DemonHistory::DecodeFrom(&in));
  uint64_t last_time = 0;
  if (!GetVarint64(&in, &last_time) || !GetVarint64(&in, &out.next_node_) ||
      !GetVarint64(&in, &out.next_link_) ||
      !GetVarint64(&in, &out.next_thread_)) {
    return Status::Corruption("graph state: truncated counters");
  }
  out.clock_.AdvanceTo(last_time);
  NEPTUNE_RETURN_IF_ERROR(DecodeRecordSet(&in, &out.base_));
  uint64_t threads = 0;
  if (!GetVarint64(&in, &threads)) {
    return Status::Corruption("graph state: truncated thread count");
  }
  for (uint64_t i = 0; i < threads; ++i) {
    ThreadState thread;
    std::string_view name;
    if (!GetVarint64(&in, &thread.id) || !GetLengthPrefixed(&in, &name) ||
        !GetVarint64(&in, &thread.branched_at)) {
      return Status::Corruption("graph state: truncated thread header");
    }
    thread.name.assign(name);
    NEPTUNE_RETURN_IF_ERROR(DecodeRecordSet(&in, &thread.records));
    const ThreadId id = thread.id;
    out.threads_.emplace(id, std::move(thread));
  }
  if (!in.empty()) {
    return Status::Corruption("graph state: trailing bytes");
  }
  return out;
}

}  // namespace ham
}  // namespace neptune

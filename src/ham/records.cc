#include "ham/records.h"

#include <algorithm>

#include "common/coding.h"

namespace neptune {
namespace ham {

// ------------------------------------------------------- DemonHistory

void DemonHistory::Set(Event event, Time t, std::string demon) {
  for (auto& [e, history] : entries_) {
    if (e == event) {
      if (!history.empty() && history.back().time == t) {
        history.back().demon = std::move(demon);
      } else {
        history.push_back(Entry{t, std::move(demon)});
      }
      return;
    }
  }
  entries_.emplace_back(event,
                        std::vector<Entry>{Entry{t, std::move(demon)}});
}

std::string DemonHistory::Get(Event event, Time t) const {
  for (const auto& [e, history] : entries_) {
    if (e != event) continue;
    if (t == 0) return history.empty() ? std::string() : history.back().demon;
    auto pos = std::upper_bound(
        history.begin(), history.end(), t,
        [](Time time, const Entry& entry) { return time < entry.time; });
    if (pos == history.begin()) return std::string();
    return std::prev(pos)->demon;
  }
  return std::string();
}

std::vector<DemonEntry> DemonHistory::GetAll(Time t) const {
  std::vector<DemonEntry> out;
  for (const auto& [event, history] : entries_) {
    (void)history;
    std::string demon = Get(event, t);
    if (!demon.empty()) out.push_back(DemonEntry{event, std::move(demon)});
  }
  return out;
}

void DemonHistory::EncodeTo(std::string* out) const {
  PutVarint64(out, entries_.size());
  for (const auto& [event, history] : entries_) {
    out->push_back(static_cast<char>(event));
    PutVarint64(out, history.size());
    for (const Entry& e : history) {
      PutVarint64(out, e.time);
      PutLengthPrefixed(out, e.demon);
    }
  }
}

Result<DemonHistory> DemonHistory::DecodeFrom(std::string_view* in) {
  DemonHistory out;
  uint64_t events = 0;
  if (!GetVarint64(in, &events)) {
    return Status::Corruption("demon history: truncated count");
  }
  for (uint64_t i = 0; i < events; ++i) {
    if (in->empty()) return Status::Corruption("demon history: truncated");
    const Event event = static_cast<Event>(in->front());
    in->remove_prefix(1);
    uint64_t n = 0;
    if (!GetVarint64(in, &n)) {
      return Status::Corruption("demon history: truncated entry count");
    }
    std::vector<Entry> history;
    history.reserve(n);
    for (uint64_t j = 0; j < n; ++j) {
      Entry e;
      std::string_view demon;
      if (!GetVarint64(in, &e.time) || !GetLengthPrefixed(in, &demon)) {
        return Status::Corruption("demon history: truncated entry");
      }
      e.demon.assign(demon);
      history.push_back(std::move(e));
    }
    out.entries_.emplace_back(event, std::move(history));
  }
  return out;
}

// ------------------------------------------------------------ LinkEnd

uint64_t LinkEnd::PositionAt(Time t) const {
  if (positions.empty()) return 0;
  if (t == 0) return positions.back().second;
  auto pos = std::upper_bound(
      positions.begin(), positions.end(), t,
      [](Time time, const std::pair<Time, uint64_t>& p) {
        return time < p.first;
      });
  if (pos == positions.begin()) return positions.front().second;
  return std::prev(pos)->second;
}

void LinkEnd::SetPosition(Time t, uint64_t position, bool versioned) {
  if (!versioned) positions.clear();
  if (!positions.empty() && positions.back().first == t) {
    positions.back().second = position;
    return;
  }
  positions.emplace_back(t, position);
}

void LinkEnd::EncodeTo(std::string* out) const {
  PutVarint64(out, node);
  out->push_back(track_current ? 1 : 0);
  PutVarint64(out, pinned_time);
  PutVarint64(out, positions.size());
  for (const auto& [t, p] : positions) {
    PutVarint64(out, t);
    PutVarint64(out, p);
  }
}

Result<LinkEnd> LinkEnd::DecodeFrom(std::string_view* in) {
  LinkEnd out;
  if (!GetVarint64(in, &out.node) || in->empty()) {
    return Status::Corruption("link end: truncated");
  }
  out.track_current = in->front() != 0;
  in->remove_prefix(1);
  uint64_t n = 0;
  if (!GetVarint64(in, &out.pinned_time) || !GetVarint64(in, &n)) {
    return Status::Corruption("link end: truncated header");
  }
  out.positions.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t t = 0;
    uint64_t p = 0;
    if (!GetVarint64(in, &t) || !GetVarint64(in, &p)) {
      return Status::Corruption("link end: truncated position");
    }
    out.positions.emplace_back(t, p);
  }
  return out;
}

// ---------------------------------------------------------- NodeRecord

void NodeRecord::EncodeTo(std::string* out) const {
  PutVarint64(out, index);
  out->push_back(is_archive ? 1 : 0);
  PutVarint64(out, protections);
  PutVarint64(out, created);
  PutVarint64(out, deleted);
  contents.EncodeTo(out);
  PutVarint64(out, minor_versions.size());
  for (const VersionEntry& v : minor_versions) {
    PutVarint64(out, v.time);
    PutLengthPrefixed(out, v.explanation);
  }
  attributes.EncodeTo(out);
  demons.EncodeTo(out);
  PutVarint64(out, out_links.size());
  for (LinkIndex l : out_links) PutVarint64(out, l);
  PutVarint64(out, in_links.size());
  for (LinkIndex l : in_links) PutVarint64(out, l);
}

Result<NodeRecord> NodeRecord::DecodeFrom(std::string_view* in) {
  NodeRecord out;
  uint64_t protections = 0;
  if (!GetVarint64(in, &out.index) || in->empty()) {
    return Status::Corruption("node record: truncated index");
  }
  out.is_archive = in->front() != 0;
  in->remove_prefix(1);
  if (!GetVarint64(in, &protections) || !GetVarint64(in, &out.created) ||
      !GetVarint64(in, &out.deleted)) {
    return Status::Corruption("node record: truncated header");
  }
  out.protections = static_cast<uint32_t>(protections);
  NEPTUNE_ASSIGN_OR_RETURN(out.contents,
                           delta::VersionChain::DecodeFrom(in));
  uint64_t minors = 0;
  if (!GetVarint64(in, &minors)) {
    return Status::Corruption("node record: truncated minors");
  }
  out.minor_versions.reserve(minors);
  for (uint64_t i = 0; i < minors; ++i) {
    VersionEntry v;
    std::string_view expl;
    if (!GetVarint64(in, &v.time) || !GetLengthPrefixed(in, &expl)) {
      return Status::Corruption("node record: truncated minor version");
    }
    v.explanation.assign(expl);
    out.minor_versions.push_back(std::move(v));
  }
  NEPTUNE_ASSIGN_OR_RETURN(out.attributes, AttributeHistory::DecodeFrom(in));
  NEPTUNE_ASSIGN_OR_RETURN(out.demons, DemonHistory::DecodeFrom(in));
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("node record: truncated out-link count");
  }
  out.out_links.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t l = 0;
    if (!GetVarint64(in, &l)) {
      return Status::Corruption("node record: truncated out-link");
    }
    out.out_links.push_back(l);
  }
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("node record: truncated in-link count");
  }
  out.in_links.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t l = 0;
    if (!GetVarint64(in, &l)) {
      return Status::Corruption("node record: truncated in-link");
    }
    out.in_links.push_back(l);
  }
  return out;
}

// ---------------------------------------------------------- LinkRecord

void LinkRecord::EncodeTo(std::string* out) const {
  PutVarint64(out, index);
  PutVarint64(out, created);
  PutVarint64(out, deleted);
  from.EncodeTo(out);
  to.EncodeTo(out);
  attributes.EncodeTo(out);
}

Result<LinkRecord> LinkRecord::DecodeFrom(std::string_view* in) {
  LinkRecord out;
  if (!GetVarint64(in, &out.index) || !GetVarint64(in, &out.created) ||
      !GetVarint64(in, &out.deleted)) {
    return Status::Corruption("link record: truncated header");
  }
  NEPTUNE_ASSIGN_OR_RETURN(out.from, LinkEnd::DecodeFrom(in));
  NEPTUNE_ASSIGN_OR_RETURN(out.to, LinkEnd::DecodeFrom(in));
  NEPTUNE_ASSIGN_OR_RETURN(out.attributes, AttributeHistory::DecodeFrom(in));
  return out;
}

}  // namespace ham
}  // namespace neptune

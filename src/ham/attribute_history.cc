#include "ham/attribute_history.h"

#include <algorithm>

#include "common/coding.h"

namespace neptune {
namespace ham {

void AttributeHistory::Set(AttributeIndex attr, Time t, std::string value,
                           bool versioned) {
  std::vector<Entry>& history = entries_[attr];
  if (!versioned) history.clear();
  // Same-time overwrite (several sets inside one transaction tick)
  // replaces rather than duplicates.
  if (!history.empty() && history.back().time == t) {
    history.back().value = std::move(value);
    return;
  }
  history.push_back(Entry{t, std::move(value)});
}

void AttributeHistory::Delete(AttributeIndex attr, Time t, bool versioned) {
  auto it = entries_.find(attr);
  if (it == entries_.end()) return;
  if (!versioned) {
    entries_.erase(it);
    return;
  }
  std::vector<Entry>& history = it->second;
  if (!history.empty() && history.back().time == t) {
    history.back().value = std::nullopt;
  } else {
    history.push_back(Entry{t, std::nullopt});
  }
}

std::optional<std::string_view> AttributeHistory::Get(AttributeIndex attr,
                                                      Time t) const {
  auto it = entries_.find(attr);
  if (it == entries_.end()) return std::nullopt;
  const std::vector<Entry>& history = it->second;
  if (t == 0) {
    if (history.empty() || !history.back().value.has_value()) {
      return std::nullopt;
    }
    return std::string_view(*history.back().value);
  }
  // Latest entry with time <= t.
  auto pos = std::upper_bound(
      history.begin(), history.end(), t,
      [](Time time, const Entry& e) { return time < e.time; });
  if (pos == history.begin()) return std::nullopt;
  --pos;
  if (!pos->value.has_value()) return std::nullopt;
  return std::string_view(*pos->value);
}

std::vector<std::pair<AttributeIndex, std::string>> AttributeHistory::GetAll(
    Time t) const {
  std::vector<std::pair<AttributeIndex, std::string>> out;
  for (const auto& [attr, history] : entries_) {
    (void)history;
    std::optional<std::string_view> value = Get(attr, t);
    if (value.has_value()) out.emplace_back(attr, std::string(*value));
  }
  return out;
}

size_t AttributeHistory::CountAt(Time t) const {
  size_t n = 0;
  for (const auto& [attr, history] : entries_) {
    (void)history;
    if (Get(attr, t).has_value()) ++n;
  }
  return n;
}

size_t AttributeHistory::PruneBefore(Time before) {
  if (before == 0) return 0;
  size_t dropped = 0;
  for (auto& [attr, history] : entries_) {
    (void)attr;
    // Last entry with time <= before stays (it is in effect at
    // `before`); everything earlier goes.
    auto keep = std::upper_bound(
        history.begin(), history.end(), before,
        [](Time t, const Entry& e) { return t < e.time; });
    if (keep == history.begin()) continue;
    --keep;  // the in-effect entry
    dropped += static_cast<size_t>(std::distance(history.begin(), keep));
    history.erase(history.begin(), keep);
  }
  return dropped;
}

Time AttributeHistory::LastTime() const {
  Time last = 0;
  for (const auto& [attr, history] : entries_) {
    (void)attr;
    if (!history.empty() && history.back().time > last) {
      last = history.back().time;
    }
  }
  return last;
}

size_t AttributeHistory::entry_count() const {
  size_t n = 0;
  for (const auto& [attr, history] : entries_) n += history.size();
  return n;
}

void AttributeHistory::EncodeTo(std::string* out) const {
  PutVarint64(out, entries_.size());
  for (const auto& [attr, history] : entries_) {
    PutVarint64(out, attr);
    PutVarint64(out, history.size());
    for (const Entry& e : history) {
      PutVarint64(out, e.time);
      out->push_back(e.value.has_value() ? 1 : 0);
      if (e.value.has_value()) PutLengthPrefixed(out, *e.value);
    }
  }
}

Result<AttributeHistory> AttributeHistory::DecodeFrom(std::string_view* in) {
  AttributeHistory out;
  uint64_t attrs = 0;
  if (!GetVarint64(in, &attrs)) {
    return Status::Corruption("attribute history: truncated count");
  }
  for (uint64_t i = 0; i < attrs; ++i) {
    uint64_t attr = 0;
    uint64_t n = 0;
    if (!GetVarint64(in, &attr) || !GetVarint64(in, &n)) {
      return Status::Corruption("attribute history: truncated header");
    }
    std::vector<Entry> history;
    history.reserve(n);
    for (uint64_t j = 0; j < n; ++j) {
      Entry e;
      if (!GetVarint64(in, &e.time) || in->empty()) {
        return Status::Corruption("attribute history: truncated entry");
      }
      const char has_value = in->front();
      in->remove_prefix(1);
      if (has_value) {
        std::string_view value;
        if (!GetLengthPrefixed(in, &value)) {
          return Status::Corruption("attribute history: truncated value");
        }
        e.value = std::string(value);
      }
      history.push_back(std::move(e));
    }
    out.entries_.emplace(attr, std::move(history));
  }
  return out;
}

}  // namespace ham
}  // namespace neptune

// GraphState: the authoritative in-memory representation of one
// versioned hypergraph, plus the op-application logic that both the
// live commit path and WAL recovery share.
//
// Layering. Records live in three levels:
//
//   base            the main version thread's records
//   thread overlay  records copied-on-write (or created) inside a
//                   non-main version thread (paper §5 "contexts" /
//                   private worlds)
//   txn overlay     records staged by an open transaction, discarded
//                   on abort and folded into the level below on commit
//
// Reads resolve txn -> thread -> base; a record found at a higher
// level shadows the lower ones. This gives transactions
// read-your-own-writes and makes abort O(1) ("complete recovery from
// any aborted transaction").
//
// Determinism. Apply(op) is the single mutation entry point. Live
// execution builds an Op (with engine-assigned ids and timestamps),
// applies it, and logs it; recovery decodes logged ops and applies
// them identically — no separate replay logic to drift.

#ifndef NEPTUNE_HAM_GRAPH_STATE_H_
#define NEPTUNE_HAM_GRAPH_STATE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "ham/attribute_index.h"
#include "ham/attribute_table.h"
#include "ham/ops.h"
#include "ham/records.h"
#include "ham/types.h"
#include "query/predicate.h"

namespace neptune {
namespace ham {

// Attributes requested by queries: resolved indices, values returned
// per object in request order.
using AttributeRequest = std::vector<AttributeIndex>;

class GraphState {
 public:
  struct RecordSet {
    std::unordered_map<NodeIndex, NodeRecord> nodes;
    std::unordered_map<LinkIndex, LinkRecord> links;
    bool empty() const { return nodes.empty() && links.empty(); }
  };

  // A version thread (paper §5 context). branched_at is the main-
  // thread time the thread was created; conflict detection on merge
  // compares against it.
  struct ThreadState {
    ThreadId id = 0;
    std::string name;
    Time branched_at = 0;
    RecordSet records;
  };

  // An open transaction's staged changes.
  struct TxnOverlay {
    RecordSet records;
    std::optional<DemonHistory> graph_demons;  // copy-on-write
    // Attribute-index deltas for the staged changes, transferred to
    // the graph's pending queue on commit (discarded on abort). When a
    // pathological transaction stages more than the cap, the overlay
    // stops tracking and the commit schedules a full rebuild instead.
    std::vector<AttributeIndexDelta> index_deltas;
    bool index_overflow = false;
    bool empty() const {
      return records.empty() && !graph_demons.has_value();
    }
  };

  GraphState() = default;
  GraphState(GraphState&&) = default;
  GraphState& operator=(GraphState&&) = default;

  // ------------------------------------------------------------ reads

  // Record lookup through txn -> thread -> base (txn may be null).
  const NodeRecord* FindNode(ThreadId thread, const TxnOverlay* txn,
                             NodeIndex index) const;
  const LinkRecord* FindLink(ThreadId thread, const TxnOverlay* txn,
                             LinkIndex index) const;

  // Graph demons visible through an optional txn overlay.
  const DemonHistory& GraphDemons(const TxnOverlay* txn) const;

  // Invokes `fn` for every node/link visible in `thread` (+txn),
  // including tombstoned records; ascending by index.
  void ForEachNode(ThreadId thread, const TxnOverlay* txn,
                   const std::function<void(const NodeRecord&)>& fn) const;
  void ForEachLink(ThreadId thread, const TxnOverlay* txn,
                   const std::function<void(const LinkRecord&)>& fn) const;

  // --------------------------------------------------------- mutation

  // Applies one op. When `txn` is non-null the changes are staged
  // there; otherwise they hit the thread/base level directly (the
  // recovery path). Ops must carry their assigned ids and time.
  Status Apply(const Op& op, TxnOverlay* txn);

  // Folds a transaction overlay into its thread (or base for the main
  // thread).
  void CommitOverlay(ThreadId thread, TxnOverlay&& txn);

  // ------------------------------------------------------ assignment

  NodeIndex AllocateNodeIndex() { return next_node_++; }
  LinkIndex AllocateLinkIndex() { return next_link_++; }
  ThreadId AllocateThreadId() { return next_thread_++; }
  LogicalClock& clock() { return clock_; }
  const LogicalClock& clock() const { return clock_; }

  AttributeTable& attributes() { return attributes_; }
  const AttributeTable& attributes() const { return attributes_; }

  // ---------------------------------------------------------- queries

  // linearizeGraph: depth-first traversal from `start` at `time`,
  // following out-links ordered by their offsets within the node.
  // Nodes failing `node_pred` (and everything reachable only through
  // them) are pruned; traversed links must satisfy `link_pred`.
  Result<SubGraph> Linearize(ThreadId thread, const TxnOverlay* txn,
                             NodeIndex start, Time time,
                             const query::Predicate& node_pred,
                             const query::Predicate& link_pred,
                             const AttributeRequest& node_attrs,
                             const AttributeRequest& link_attrs) const;

  // getGraphQuery: all nodes at `time` satisfying `node_pred`, and all
  // links satisfying `link_pred` that connect two returned nodes.
  //
  // Planning: when IndexEligible holds and the node predicate carries
  // equality conjuncts, candidates come from the attribute index —
  // one probe (plan kind `index`) or a sorted intersection of several
  // probes ordered by cardinality (`intersect`) — and the residual
  // predicate runs only on those survivors; everything else scans.
  // `plan` (optional) receives the execution report; `force_scan`
  // bypasses the planner (explain --verify and the B3 ablation).
  Result<SubGraph> Query(ThreadId thread, const TxnOverlay* txn, Time time,
                         const query::Predicate& node_pred,
                         const query::Predicate& link_pred,
                         const AttributeRequest& node_attrs,
                         const AttributeRequest& link_attrs,
                         QueryPlan* plan = nullptr,
                         bool force_scan = false) const;

  // The one eligibility rule for serving a query from the attribute
  // index. The index models exactly the committed, current-time
  // (time == 0) state of the main version thread:
  //   - a historical time sees values the index no longer holds,
  //   - a non-main thread sees its private overlay records,
  //   - an open transaction must read its own staged writes.
  // Any of those views must take the scan path; enablement
  // (HamOptions::use_attribute_index) is checked separately.
  static bool IndexEligible(ThreadId thread, const TxnOverlay* txn,
                            Time time) {
    return thread == kMainThread && txn == nullptr && time == 0;
  }

  // Toggles the getGraphQuery attribute index (B3 ablation).
  void set_attribute_index_enabled(bool enabled) {
    attribute_index_enabled_ = enabled;
  }
  uint64_t attribute_index_rebuilds() const {
    return node_index_.rebuild_count();
  }
  uint64_t attribute_index_applied_deltas() const {
    return node_index_.applied_delta_count();
  }

  // Keyframe interval stamped onto node version chains as ops touch
  // them (HamOptions::keyframe_interval; see delta/version_chain.h).
  void set_keyframe_interval(uint32_t k) { keyframe_interval_ = k; }
  uint32_t keyframe_interval() const { return keyframe_interval_; }

  // getAttributeValues: every distinct value of `attr` attached to any
  // node or link at `time`, sorted.
  std::vector<std::string> AttributeValuesAt(ThreadId thread,
                                             const TxnOverlay* txn,
                                             AttributeIndex attr,
                                             Time time) const;

  // Evaluates `pred` against a record's attributes at `time`.
  bool EvaluateOnNode(const NodeRecord& node, Time time,
                      const query::Predicate& pred) const;
  bool EvaluateOnLink(const LinkRecord& link, Time time,
                      const query::Predicate& pred) const;

  // -------------------------------------------------------- threads

  const ThreadState* FindThread(ThreadId thread) const;
  std::vector<ContextInfo> ListThreads() const;

  // --------------------------------------------------------- helpers

  // Time of the last change of any kind to `node`.
  static Time NodeLastModified(const NodeRecord& node);
  static Time LinkLastModified(const LinkRecord& link);

  // Values of the requested attributes on a record at `time`.
  std::vector<std::optional<std::string>> AttributeValuesFor(
      const AttributeHistory& attrs, const AttributeRequest& request,
      Time time) const;

  struct Stats {
    size_t node_count = 0;        // live nodes, main thread, now
    size_t link_count = 0;
    size_t total_node_records = 0;
    size_t total_link_records = 0;
    size_t thread_count = 0;
    size_t attribute_count = 0;
  };
  Stats ComputeStats() const;

  // Structural integrity check ("fsck"): referential consistency of
  // links vs node link-lists, index-counter sanity, version-time
  // monotonicity, and attribute-index validity. Returns one message
  // per problem found (empty = clean).
  std::vector<std::string> CheckIntegrity() const;

  // Drops history strictly older than the version in effect at
  // `before` from every main-thread record: node contents versions,
  // attribute histories, attachment-offset histories and minor
  // versions. Reads at or after `before` are unaffected; earlier
  // times become unavailable. Returns the number of records touched.
  size_t PruneHistoryBefore(Time before);

  // ------------------------------------------------------------ codec

  void EncodeTo(std::string* out) const;
  static Result<GraphState> DecodeFrom(std::string_view in);

 private:
  // Returns a mutable record at the right level, copying on write into
  // `txn` when staging, or into the thread overlay when txn == null
  // and thread != main.
  Result<NodeRecord*> MutableNode(ThreadId thread, TxnOverlay* txn,
                                  NodeIndex index);
  Result<LinkRecord*> MutableLink(ThreadId thread, TxnOverlay* txn,
                                  LinkIndex index);
  RecordSet& LevelFor(ThreadId thread, TxnOverlay* txn);

  // Stages an attribute-index delta for a committed-or-staging change
  // of `attr` on `node` (main-thread changes only; no-op otherwise).
  void StageIndexDelta(ThreadId thread, TxnOverlay* txn, NodeIndex node,
                       AttributeIndex attr, std::optional<std::string> old_value,
                       std::optional<std::string> new_value);

  // Brings the index up to date under node_index_mu_: applies pending
  // deltas, or rebuilds when the index is unbuilt/invalidated. Fills
  // the maintenance fields of `plan`.
  void MaintainIndexLocked(QueryPlan* plan) const;

  Status ApplyAddNode(const Op& op, TxnOverlay* txn);
  Status ApplyDeleteNode(const Op& op, TxnOverlay* txn);
  Status ApplyAddLink(const Op& op, TxnOverlay* txn);
  Status ApplyDeleteLink(const Op& op, TxnOverlay* txn);
  Status ApplyModifyNode(const Op& op, TxnOverlay* txn);
  Status ApplyMergeContext(const Op& op);

  void AddMinorVersion(NodeRecord* node, Time t, std::string explanation);

  AttributeTable attributes_;
  DemonHistory graph_demons_;
  LogicalClock clock_;
  NodeIndex next_node_ = 1;
  LinkIndex next_link_ = 1;
  ThreadId next_thread_ = 1;

  RecordSet base_;
  std::map<ThreadId, ThreadState> threads_;  // non-main threads only

  uint32_t keyframe_interval_ = 0;

  // getGraphQuery fast path. Mutations are serialized under the
  // exclusive graph lock, but queries run concurrently under shared
  // locks, so index maintenance is serialized by its own mutex (behind
  // a unique_ptr because GraphState is movable and std::mutex is not).
  // Candidate references handed out by the index stay valid for the
  // duration of a shared graph lock: pending deltas are only enqueued
  // under the exclusive lock, so within one writer-free window the
  // posting lists mutate at most once — when the first reader drains
  // the queue — and every reader synchronizes through node_index_mu_
  // before taking references.
  bool attribute_index_enabled_ = true;
  uint64_t mutation_epoch_ = 0;  // bumped by every Apply/CommitOverlay
  std::unique_ptr<std::mutex> node_index_mu_ = std::make_unique<std::mutex>();
  mutable AttributeValueIndex node_index_;
  // Committed changes the index has not absorbed yet (drained by the
  // next query), and the invalidation flag set by merge/prune/recovery
  // or queue overflow — the cases where deltas are not tracked.
  mutable std::vector<AttributeIndexDelta> index_deltas_;
  mutable bool index_needs_rebuild_ = false;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_GRAPH_STATE_H_

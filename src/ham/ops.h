// The logical operation log. Every mutating HAM operation is recorded
// as one Op carrying all of its operands *and* the results the engine
// assigned (indices, timestamps), so that replaying the ops of every
// committed transaction — in order, on top of the latest snapshot —
// deterministically rebuilds the graph. One WAL record holds the ops
// of one committed transaction.

#ifndef NEPTUNE_HAM_OPS_H_
#define NEPTUNE_HAM_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

enum class OpKind : uint8_t {
  kAddNode = 1,
  kDeleteNode = 2,
  kAddLink = 3,
  kDeleteLink = 4,
  kModifyNode = 5,
  kSetNodeAttribute = 6,
  kDeleteNodeAttribute = 7,
  kSetLinkAttribute = 8,
  kDeleteLinkAttribute = 9,
  kInternAttribute = 10,
  kChangeNodeProtection = 11,
  kSetGraphDemon = 12,
  kSetNodeDemon = 13,
  kCreateContext = 14,
  kMergeContext = 15,
  kPruneHistory = 16,
};

const char* OpKindName(OpKind kind);

// A single mutation. Fields not meaningful for a given kind are left
// zero/empty (see the per-kind contracts in ops.cc's codec).
struct Op {
  OpKind kind = OpKind::kAddNode;
  Time time = 0;            // logical timestamp assigned to the op
  ThreadId thread = kMainThread;  // version thread it applies to

  NodeIndex node = 0;       // target or newly assigned node
  LinkIndex link = 0;       // target or newly assigned link
  AttributeIndex attr = 0;  // attribute ops

  uint64_t arg = 0;         // protections / source thread / misc
  bool flag = false;        // addNode: is_archive; copyLink origin side
  Event event = Event::kOpenGraph;  // demon ops

  std::string value;        // contents / attribute value / demon value
  std::string extra;        // explanation / attribute or context name

  LinkPt from;              // addLink
  LinkPt to;                // addLink
  std::vector<LinkPt> attachments;  // modifyNode: per-link new LinkPts
};

void EncodeOp(const Op& op, std::string* out);
Result<Op> DecodeOp(std::string_view* in);

// A committed transaction's WAL payload.
std::string EncodeTransaction(const std::vector<Op>& ops);
Result<std::vector<Op>> DecodeTransaction(std::string_view payload);

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_OPS_H_

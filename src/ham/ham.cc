#include "ham/ham.h"

#include <algorithm>
#include <chrono>
#include <shared_mutex>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "delta/recon_cache.h"

namespace neptune {
namespace ham {

namespace {

constexpr char kMetaMagic[] = "NEPMETA1";  // 8 bytes

// First whitespace-delimited word of a demon value — the registry key.
std::string DemonCallbackName(const std::string& demon) {
  size_t end = demon.find(' ');
  return end == std::string::npos ? demon : demon.substr(0, end);
}

Event EventForOp(const Op& op) {
  switch (op.kind) {
    case OpKind::kAddNode:
      return Event::kAddNode;
    case OpKind::kDeleteNode:
      return Event::kDeleteNode;
    case OpKind::kAddLink:
      return Event::kAddLink;
    case OpKind::kDeleteLink:
      return Event::kDeleteLink;
    case OpKind::kModifyNode:
      return Event::kModifyNode;
    case OpKind::kSetNodeAttribute:
    case OpKind::kSetLinkAttribute:
      return Event::kSetAttribute;
    case OpKind::kDeleteNodeAttribute:
    case OpKind::kDeleteLinkAttribute:
      return Event::kDeleteAttribute;
    case OpKind::kChangeNodeProtection:
      return Event::kChangeProtection;
    default:
      return Event::kCommitTransaction;  // no per-op demon event
  }
}

bool OpHasDemonEvent(const Op& op) {
  switch (op.kind) {
    case OpKind::kInternAttribute:
    case OpKind::kSetGraphDemon:
    case OpKind::kSetNodeDemon:
    case OpKind::kCreateContext:
    case OpKind::kMergeContext:
      return false;
    default:
      return true;
  }
}

}  // namespace

// -------------------------------------------------------- DemonRegistry

void DemonRegistry::Register(const std::string& name, DemonCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[name] = std::move(callback);
}

void DemonRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(name);
}

bool DemonRegistry::Fire(const DemonInvocation& invocation) const {
  DemonCallback callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = callbacks_.find(DemonCallbackName(invocation.demon));
    if (it == callbacks_.end()) return false;
    callback = it->second;
  }
  NEPTUNE_METRIC_COUNT("ham.demons.fired", 1);
  callback(invocation);
  return true;
}

// ------------------------------------------------------------- lifecycle

Ham::Ham(Env* env, HamOptions options)
    : env_(env),
      options_(std::move(options)),
      time_(options_.time_source != nullptr ? options_.time_source
                                            : RealTimeSource()),
      project_rng_(options_.project_id_seed != 0 ? options_.project_id_seed
                                                 : (NowMicros() | 1)) {
  // The reconstruction cache is process-wide; the most recently
  // constructed engine's option wins (they normally agree).
  delta::ReconstructionCache::Instance().set_capacity_bytes(
      options_.recon_cache_bytes);
  // The tracer is process-wide too; same most-recent-engine-wins rule.
  Tracer::Instance().Configure(options_.trace_sample_n,
                               options_.trace_slow_us);
  // Pre-register the self-protection metrics so operator tooling
  // (neptune_ctl stats) shows the rows even before they first fire.
  MetricsRegistry::Instance().GetGauge("server.sessions.active");
  MetricsRegistry::Instance().GetCounter("ham.txn.aborted_by_lease");
  MetricsRegistry::Instance().GetCounter("ham.limits.rejected");
  MetricsRegistry::Instance().GetCounter("trace.spans.recorded");
  MetricsRegistry::Instance().GetCounter("trace.spans.dropped");
  MetricsRegistry::Instance().GetCounter("trace.slow_ops");
  // Query-planner and index-maintenance metrics (see graph_state.h's
  // planner notes): registered at zero so `neptune_ctl stats` shows
  // the taxonomy before the first query runs.
  MetricsRegistry::Instance().GetCounter("query.plan.index");
  MetricsRegistry::Instance().GetCounter("query.plan.intersect");
  MetricsRegistry::Instance().GetCounter("query.plan.scan");
  MetricsRegistry::Instance().GetCounter("query.index.applied_deltas");
  MetricsRegistry::Instance().GetCounter("query.index.rebuilds");
  MetricsRegistry::Instance().GetCounter("ham.demons.dispatch.indexed");
  // Replication metrics (ROADMAP item 3): pre-registered so both roles
  // expose the full repl.* taxonomy from the first stats scrape.
  follower_mode_.store(options_.follower_mode, std::memory_order_release);
  // Role/term gauges feed /statusz and `neptune_ctl top`: role is
  // 0 = primary, 1 = follower; term is the highest fencing term this
  // process has seen (updated on promote and by the replicator tail).
  MetricsRegistry::Instance().GetGauge("repl.role")->Set(
      options_.follower_mode ? 1 : 0);
  MetricsRegistry::Instance().GetGauge("repl.term");
  MetricsRegistry::Instance().GetGauge("repl.apply_lag_us");
  MetricsRegistry::Instance().GetGauge("repl.lag_bytes");
  MetricsRegistry::Instance().GetGauge("repl.follower.lag_bytes");
  MetricsRegistry::Instance().GetCounter("repl.primary.fetches");
  MetricsRegistry::Instance().GetCounter("repl.primary.bytes_shipped");
  MetricsRegistry::Instance().GetCounter("repl.primary.snapshots_shipped");
  MetricsRegistry::Instance().GetCounter("repl.primary.stale_term_rejects");
  MetricsRegistry::Instance().GetCounter("repl.follower.bytes_applied");
  MetricsRegistry::Instance().GetCounter("repl.follower.records_applied");
  MetricsRegistry::Instance().GetCounter("repl.follower.corrupt_chunks");
  MetricsRegistry::Instance().GetCounter("repl.follower.snapshots_installed");
  MetricsRegistry::Instance().GetCounter("repl.follower.rolls");
  MetricsRegistry::Instance().GetCounter("repl.promotions");
  if (options_.txn_lease_ms > 0 && !options_.manual_lease_sweep) {
    lease_watchdog_ = std::thread([this] { LeaseWatchdogLoop(); });
  }
}

Ham::~Ham() {
  if (lease_watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    lease_watchdog_.join();
  }
}

// ------------------------------------------------------- lease watchdog

Ham::LockedSession::LockedSession(std::shared_ptr<Session> session)
    : session_(std::move(session)), lock_(session_->op_mu) {
  session_->last_touch_us.store(session_->time->NowMicros(),
                                std::memory_order_relaxed);
}

Ham::LockedSession::~LockedSession() {
  // Renew on exit too: a long-running op must not leave the lease
  // looking stale the moment it finishes.
  if (session_ != nullptr) {
    session_->last_touch_us.store(session_->time->NowMicros(),
                                  std::memory_order_relaxed);
  }
}

void Ham::LeaseWatchdogLoop() {
  const uint64_t lease_us = options_.txn_lease_ms * 1000;
  const auto period = std::chrono::milliseconds(
      std::max<uint64_t>(options_.txn_lease_ms / 4, 5));
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, period);
    if (watchdog_stop_) break;
    lock.unlock();
    SweepExpiredLeases(lease_us);
    lock.lock();
  }
}

void Ham::SweepLeasesNow() {
  if (options_.txn_lease_ms > 0) {
    SweepExpiredLeases(options_.txn_lease_ms * 1000);
  }
}

void Ham::SweepExpiredLeases(uint64_t lease_us) {
  // Collect candidates under the registry lock, then abort each under
  // its own op_mu with the registry lock released — the reverse order
  // (waiting for op_mu while holding registry_mu_) could deadlock with
  // openContext, which registers a session while inside an op.
  std::vector<std::shared_ptr<Session>> candidates;
  {
    const uint64_t now = time_->NowMicros();
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [id, session] : sessions_) {
      if (session->in_txn.load(std::memory_order_relaxed) &&
          now - session->last_touch_us.load(std::memory_order_relaxed) >
              lease_us) {
        candidates.push_back(session);
      }
    }
  }
  for (const std::shared_ptr<Session>& session : candidates) {
    // try_lock: if the session's thread is mid-op it is plainly not
    // abandoned, and the op renews the lease on exit anyway.
    std::unique_lock<std::recursive_mutex> op_lock(session->op_mu,
                                                   std::try_to_lock);
    if (!op_lock.owns_lock()) continue;
    if (!session->in_txn.load(std::memory_order_relaxed)) continue;
    if (time_->NowMicros() -
            session->last_touch_us.load(std::memory_order_relaxed) <=
        lease_us) {
      continue;  // renewed while we were collecting
    }
    NEPTUNE_TRACE_SPAN(span, "ham.txn.leaseAbort");
    if (span.active()) {
      span.Annotate("session=" + std::to_string(session->id) + " lease_ms=" +
                    std::to_string(options_.txn_lease_ms));
    }
    session->overlay = GraphState::TxnOverlay();
    session->ops.clear();
    session->in_txn.store(false, std::memory_order_relaxed);
    session->lease_aborted = true;
    ReleaseWriter(session->graph.get(), session->id);
    NEPTUNE_METRIC_COUNT("ham.txn.aborted_by_lease", 1);
    NEPTUNE_METRIC_COUNT("ham.txn.aborted", 1);
    NEPTUNE_LOG(Warn) << "event=lease_expired session=" << session->id
                      << " lease_ms=" << options_.txn_lease_ms
                      << " action=abort_and_release_writer";
  }
}

std::string Ham::EncodeMeta(ProjectId project, uint32_t protections) {
  std::string out(kMetaMagic, 8);
  PutFixed64(&out, project);
  PutVarint32(&out, protections);
  return out;
}

Status Ham::DecodeMeta(std::string_view meta, ProjectId* project,
                       uint32_t* protections) {
  if (meta.size() < 8 || meta.substr(0, 8) != std::string_view(kMetaMagic, 8)) {
    return Status::Corruption("bad PROJECT metadata magic");
  }
  meta.remove_prefix(8);
  if (!GetFixed64(&meta, project) || !GetVarint32(&meta, protections)) {
    return Status::Corruption("truncated PROJECT metadata");
  }
  return Status::OK();
}

Result<ProjectId> Ham::ReadProjectId(Env* env, const std::string& dir) {
  NEPTUNE_ASSIGN_OR_RETURN(std::string meta, DurableStore::ReadMeta(env, dir));
  ProjectId project = 0;
  uint32_t protections = 0;
  NEPTUNE_RETURN_IF_ERROR(DecodeMeta(meta, &project, &protections));
  return project;
}

Result<CreateGraphResult> Ham::CreateGraph(const std::string& directory,
                                           uint32_t protections) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.createGraph");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.graph");
  NEPTUNE_RETURN_IF_ERROR(RejectIfFollower());
  // A fresh graph: logical time 1 is its creation instant.
  GraphState state;
  const Time creation = state.clock().Tick();

  // Unique-enough project id (the Appendix only requires uniqueness).
  // The generator is per-engine and seedable (project_id_seed) so the
  // simulation harness reproduces identical ids run-to-run.
  ProjectId project = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    do {
      project = project_rng_.Next();
    } while (project == 0);
  }

  std::string snapshot;
  state.EncodeTo(&snapshot);
  NEPTUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<DurableStore> store,
      DurableStore::Create(env_, directory, EncodeMeta(project, protections),
                           snapshot, protections));
  (void)store;  // closed immediately; openGraph re-opens
  return CreateGraphResult{project, creation};
}

Status Ham::DestroyGraph(ProjectId project, const std::string& directory) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.destroyGraph");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.graph");
  NEPTUNE_RETURN_IF_ERROR(RejectIfFollower());
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = graphs_.find(directory);
    if (it != graphs_.end() && !it->second.expired()) {
      return Status::FailedPrecondition(
          "graph in " + directory + " has open sessions; close them first");
    }
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::string meta,
                           DurableStore::ReadMeta(env_, directory));
  ProjectId stored = 0;
  uint32_t protections = 0;
  NEPTUNE_RETURN_IF_ERROR(DecodeMeta(meta, &stored, &protections));
  if (stored != project) {
    return Status::PermissionDenied(
        "ProjectId does not match the graph in " + directory);
  }
  return DurableStore::Destroy(env_, directory);
}

Result<std::shared_ptr<Ham::GraphHandle>> Ham::LoadGraph(
    const std::string& directory) {
  // Fast path: already open.
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = graphs_.find(directory);
    if (it != graphs_.end()) {
      if (std::shared_ptr<GraphHandle> handle = it->second.lock()) {
        return handle;
      }
      graphs_.erase(it);
    }
  }

  RecoveredState recovered;
  NEPTUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<DurableStore> store,
      DurableStore::Open(env_, directory, &recovered,
                         options_.repl_keep_wal_generations));
  auto handle = std::make_shared<GraphHandle>();
  handle->directory = directory;
  handle->store = std::move(store);
  NEPTUNE_RETURN_IF_ERROR(
      DecodeMeta(recovered.meta, &handle->project, &handle->protections));
  NEPTUNE_ASSIGN_OR_RETURN(handle->state,
                           GraphState::DecodeFrom(recovered.snapshot));
  handle->state.set_attribute_index_enabled(options_.use_attribute_index);
  handle->state.set_keyframe_interval(options_.keyframe_interval);
  // Redo every committed transaction.
  for (const std::string& record : recovered.wal_records) {
    NEPTUNE_ASSIGN_OR_RETURN(std::vector<Op> ops, DecodeTransaction(record));
    for (const Op& op : ops) {
      Status status = handle->state.Apply(op, /*txn=*/nullptr);
      if (!status.ok()) {
        return Status::Corruption("WAL replay failed for " +
                                  std::string(OpKindName(op.kind)) + ": " +
                                  status.ToString());
      }
    }
  }
  handle->demon_index.Rebuild(handle->state);
  if (!recovered.report.Clean()) {
    NEPTUNE_LOG(Warn) << "event=graph_recovered dir=" << directory << " "
                      << recovered.report.ToString();
  } else {
    NEPTUNE_LOG(Info) << "event=graph_recovered dir=" << directory << " "
                      << recovered.report.ToString();
  }

  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = graphs_.find(directory);
  if (it != graphs_.end()) {
    if (std::shared_ptr<GraphHandle> existing = it->second.lock()) {
      return existing;  // lost a benign race with another opener
    }
  }
  graphs_[directory] = handle;
  return handle;
}

Result<Context> Ham::OpenGraph(ProjectId project, const std::string& machine,
                               const std::string& directory) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.openGraph");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.graph");
  (void)machine;  // addressing is the RPC layer's concern
  NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<GraphHandle> graph,
                           LoadGraph(directory));
  if (graph->project != project) {
    return Status::PermissionDenied("ProjectId does not match the graph in " +
                                    directory);
  }
  auto session = std::make_shared<Session>();
  session->graph = graph;
  session->time = time_;
  session->last_touch_us.store(time_->NowMicros(), std::memory_order_relaxed);
  GraphHandle* handle = graph.get();
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    id = next_session_++;
    session->id = id;
    sessions_[id] = std::move(session);
    handle->open_sessions++;
  }
  MetricsRegistry::Instance().GetGauge("server.sessions.active")->Increment();
  // "This operation can trigger a demon."
  Time now = 0;
  {
    std::shared_lock<std::shared_mutex> lock(handle->mu);
    now = handle->state.clock().Last();
  }
  FireEventDemons(handle, kMainThread, Event::kOpenGraph, 0, 0, now);
  return Context{id};
}

Status Ham::CloseGraph(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.closeGraph");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.graph");
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = sessions_.find(ctx.session);
    if (it == sessions_.end()) {
      return Status::InvalidArgument("invalid context handle");
    }
    session = std::move(it->second);
    sessions_.erase(it);
    session->graph->open_sessions--;
  }
  MetricsRegistry::Instance().GetGauge("server.sessions.active")->Decrement();
  // Serialize with the lease watchdog: it may hold a candidate
  // reference to this session and must observe the abort below.
  std::lock_guard<std::recursive_mutex> op_lock(session->op_mu);
  if (session->in_txn) {
    // Abort: staged state evaporates; free the writer slot.
    session->overlay = GraphState::TxnOverlay();
    session->ops.clear();
    session->in_txn = false;
    ReleaseWriter(session->graph.get(), ctx.session);
  }
  return Status::OK();
}

Result<Ham::LockedSession> Ham::FindSession(Context ctx) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = sessions_.find(ctx.session);
    if (it == sessions_.end()) {
      return Status::InvalidArgument("invalid context handle " +
                                     std::to_string(ctx.session));
    }
    session = it->second;
  }
  // op_mu is taken after registry_mu_ is released; see SweepExpiredLeases
  // for why the orders must never interleave.
  return LockedSession(std::move(session));
}

// ----------------------------------------------------------- writer slot

void Ham::AcquireWriter(GraphHandle* graph, uint64_t session) {
  std::unique_lock<std::shared_mutex> lock(graph->mu, std::defer_lock);
  {
    // The writer-slot wait is where a contended graph spends its time;
    // give it its own span so traces attribute it correctly.
    NEPTUNE_TRACE_SPAN(span, "ham.lock.writer_wait");
    lock.lock();
    graph->writer_cv.wait(lock, [&] { return graph->writer_session == 0; });
  }
  graph->writer_session = session;
}

void Ham::ReleaseWriter(GraphHandle* graph, uint64_t session) {
  {
    std::lock_guard<std::shared_mutex> lock(graph->mu);
    if (graph->writer_session == session) graph->writer_session = 0;
  }
  graph->writer_cv.notify_all();
}

// ----------------------------------------------------------- transactions

Status Ham::BeginTransaction(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.beginTransaction");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.txn");
  NEPTUNE_RETURN_IF_ERROR(RejectIfFollower());
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  if (session->in_txn) {
    return Status::FailedPrecondition("a transaction is already open");
  }
  session->lease_aborted = false;  // a fresh transaction gets a fresh lease
  AcquireWriter(session->graph.get(), ctx.session);
  session->in_txn = true;
  session->overlay = GraphState::TxnOverlay();
  session->ops.clear();
  NEPTUNE_METRIC_COUNT("ham.txn.begun", 1);
  return Status::OK();
}

Status Ham::CommitLocked(GraphHandle* graph, Session* session) {
  if (session->ops.empty()) return Status::OK();
  const std::string record = EncodeTransaction(session->ops);
  NEPTUNE_TRACE_SPAN(span, "ham.txn.commit");
  if (span.active()) {
    span.Annotate("ops=" + std::to_string(session->ops.size()) +
                  " bytes=" + std::to_string(record.size()));
  }
  Status status = graph->store->AppendRecord(record, options_.sync_commits);
  if (!status.ok()) {
    // The transaction did not become durable; treat as aborted.
    session->overlay = GraphState::TxnOverlay();
    session->ops.clear();
    return status;
  }
  graph->state.CommitOverlay(session->thread, std::move(session->overlay));
  session->overlay = GraphState::TxnOverlay();
  // Fold demon mutations into the dispatch index while we still hold
  // the exclusive lock, so dispatch after release sees them.
  for (const Op& op : session->ops) {
    graph->demon_index.ApplyCommitted(op);
  }
  if (graph->store->wal_bytes() > options_.checkpoint_wal_bytes) {
    std::string snapshot;
    graph->state.EncodeTo(&snapshot);
    Status checkpoint_status = graph->store->Checkpoint(snapshot);
    if (!checkpoint_status.ok()) {
      NEPTUNE_LOG(Warn) << "event=auto_checkpoint_failed code="
                        << StatusCodeToString(checkpoint_status.code())
                        << " detail=\"" << checkpoint_status.message()
                        << "\"";
    }
  }
  // Wake any follower long-polling in ReplFetch for these bytes.
  NotifyReplWaiters(graph);
  return Status::OK();
}

Status Ham::CommitTransaction(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.commitTransaction");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.txn");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  if (session->lease_aborted) {
    session->lease_aborted = false;
    return Status::Aborted(
        "transaction was aborted by lease expiry; nothing was committed");
  }
  if (!session->in_txn) {
    return Status::FailedPrecondition("no transaction is open");
  }
  GraphHandle* graph = session->graph.get();
  std::vector<Op> committed;
  Status status;
  {
    std::unique_lock<std::shared_mutex> lock(graph->mu, std::defer_lock);
    {
      NEPTUNE_TRACE_SPAN(lock_span, "ham.lock.exclusive_wait");
      lock.lock();
    }
    status = CommitLocked(graph, session.get());
    if (status.ok()) committed = std::move(session->ops);
    session->ops.clear();
  }
  session->in_txn = false;
  ReleaseWriter(graph, ctx.session);
  if (status.ok()) {
    NEPTUNE_METRIC_COUNT("ham.txn.committed", 1);
  } else {
    NEPTUNE_METRIC_COUNT("ham.txn.aborted", 1);
  }
  if (status.ok() && !committed.empty()) {
    FireDemons(graph, session->thread, committed);
  }
  return status;
}

Status Ham::AbortTransaction(Context ctx) {
  NEPTUNE_TRACE_SPAN(op_span, "ham.abortTransaction");
  NEPTUNE_METRIC_TIMED(timer, "ham.op.txn");
  NEPTUNE_ASSIGN_OR_RETURN(LockedSession session, FindSession(ctx));
  if (session->lease_aborted) {
    // The watchdog already did the work; the client's abort succeeds.
    session->lease_aborted = false;
    return Status::OK();
  }
  if (!session->in_txn) {
    return Status::FailedPrecondition("no transaction is open");
  }
  session->overlay = GraphState::TxnOverlay();
  session->ops.clear();
  session->in_txn = false;
  ReleaseWriter(session->graph.get(), ctx.session);
  NEPTUNE_METRIC_COUNT("ham.txn.aborted", 1);
  return Status::OK();
}

Status Ham::Execute(Session* session, uint64_t session_id, Op* op) {
  NEPTUNE_RETURN_IF_ERROR(RejectIfFollower());
  if (session->lease_aborted) {
    // Refuse to silently fold what the client believes is transaction
    // work into an implicit commit; it must abort (or commit, and get
    // told) before continuing.
    return Status::Aborted(
        "transaction was aborted by lease expiry; call abortTransaction");
  }
  GraphHandle* graph = session->graph.get();
  op->thread = session->thread;
  if (session->in_txn) {
    std::unique_lock<std::shared_mutex> lock(graph->mu, std::defer_lock);
    {
      NEPTUNE_TRACE_SPAN(lock_span, "ham.lock.exclusive_wait");
      lock.lock();
    }
    op->time = graph->state.clock().Tick();
    NEPTUNE_RETURN_IF_ERROR(graph->state.Apply(*op, &session->overlay));
    session->ops.push_back(*op);
    return Status::OK();
  }
  // Implicit single-op transaction: hold the lock across apply+commit,
  // but only once the writer slot is free.
  std::vector<Op> committed;
  {
    std::unique_lock<std::shared_mutex> lock(graph->mu, std::defer_lock);
    {
      NEPTUNE_TRACE_SPAN(lock_span, "ham.lock.exclusive_wait");
      lock.lock();
      graph->writer_cv.wait(lock, [&] { return graph->writer_session == 0; });
    }
    (void)session_id;
    op->time = graph->state.clock().Tick();
    Status apply_status = graph->state.Apply(*op, &session->overlay);
    if (!apply_status.ok()) {
      // Drop copy-on-write residue so a later implicit op can't fold
      // stale record copies over newer base state.
      session->overlay = GraphState::TxnOverlay();
      return apply_status;
    }
    session->ops.push_back(*op);
    Status status = CommitLocked(graph, session);
    if (!status.ok()) {
      session->ops.clear();
      return status;
    }
    committed = std::move(session->ops);
    session->ops.clear();
  }
  NEPTUNE_METRIC_COUNT("ham.txn.implicit", 1);
  NEPTUNE_METRIC_COUNT("ham.txn.committed", 1);
  FireDemons(graph, session->thread, committed);
  return Status::OK();
}

// ----------------------------------------------------------------- demons

void Ham::FireEventDemons(GraphHandle* graph, ThreadId thread, Event event,
                          NodeIndex node, LinkIndex link, Time time) {
  // Fast path: main-thread dispatch answers from the demon index
  // without touching the graph lock. Non-main threads resolve node
  // demons through their overlay, so they keep the locked path.
  if (thread == kMainThread) {
    std::string graph_demon;
    std::string node_demon;
    bool served = graph->demon_index.Lookup(event, node, &graph_demon,
                                            &node_demon);
    if (!served) {
      // Index was invalidated (merge/prune); rebuild under the shared
      // lock and retry once.
      std::shared_lock<std::shared_mutex> lock(graph->mu);
      graph->demon_index.Rebuild(graph->state);
      served = graph->demon_index.Lookup(event, node, &graph_demon,
                                         &node_demon);
    }
    if (served) {
      NEPTUNE_METRIC_COUNT("ham.demons.dispatch.indexed", 1);
      if (!graph_demon.empty()) {
        demon_registry_.Fire(DemonInvocation{event, time, graph->project,
                                             thread, node, link,
                                             std::move(graph_demon)});
      }
      if (!node_demon.empty()) {
        demon_registry_.Fire(DemonInvocation{event, time, graph->project,
                                             thread, node, link,
                                             std::move(node_demon)});
      }
      return;
    }
  }
  std::vector<DemonInvocation> to_fire;
  {
    std::shared_lock<std::shared_mutex> lock(graph->mu);
    std::string graph_demon = graph->state.GraphDemons(nullptr).Get(event, 0);
    if (!graph_demon.empty()) {
      to_fire.push_back(DemonInvocation{event, time, graph->project, thread,
                                        node, link, std::move(graph_demon)});
    }
    if (node != 0) {
      const NodeRecord* record = graph->state.FindNode(thread, nullptr, node);
      if (record != nullptr) {
        std::string node_demon = record->demons.Get(event, 0);
        if (!node_demon.empty()) {
          to_fire.push_back(DemonInvocation{event, time, graph->project,
                                            thread, node, link,
                                            std::move(node_demon)});
        }
      }
    }
  }
  for (const DemonInvocation& invocation : to_fire) {
    demon_registry_.Fire(invocation);
  }
}

void Ham::FireDemons(GraphHandle* graph, ThreadId thread,
                     const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    if (!OpHasDemonEvent(op)) continue;
    FireEventDemons(graph, thread, EventForOp(op), op.node, op.link, op.time);
  }
  if (!ops.empty()) {
    FireEventDemons(graph, thread, Event::kCommitTransaction, 0, 0,
                    ops.back().time);
  }
}

}  // namespace ham
}  // namespace neptune

// Ham: the local Hypertext Abstract Machine engine — Neptune's bottom
// layer (paper §3). One Ham instance manages any number of graph
// databases (each a DurableStore directory), serializes writers per
// graph, runs demons, and recovers committed state on open.

#ifndef NEPTUNE_HAM_HAM_H_
#define NEPTUNE_HAM_HAM_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "ham/demon_index.h"
#include "ham/graph_state.h"
#include "ham/ham_interface.h"
#include "storage/durable_store.h"

namespace neptune {
namespace ham {

// What ReplicaApply did with one streamed WAL chunk (follower side).
struct ReplicaApplyResult {
  uint64_t applied_bytes = 0;    // valid frame bytes persisted + applied
  uint64_t records_applied = 0;  // committed transactions among them
  // The chunk's tail failed CRC validation — a torn or corrupt
  // streamed record. The valid prefix was kept; the caller re-fetches
  // from the new offset (truncate-and-resync).
  bool truncated_tail = false;
  bool mid_log_corruption = false;
};

struct HamOptions {
  // fsync the WAL on every commit. Turning this off trades the last
  // few commits on power loss for throughput (bench B5 measures both).
  bool sync_commits = true;
  // Rewrite the snapshot and rotate the WAL when it exceeds this size.
  uint64_t checkpoint_wal_bytes = 8ull << 20;
  // Machine name reported to openGraph validation; "" accepts any.
  std::string machine = "local";
  // Serve eligible getGraphQuery calls from the lazily-rebuilt
  // attribute index (see ham/attribute_index.h). Off = always scan
  // (the B3 ablation baseline).
  bool use_attribute_index = true;
  // Store a full copy of every K-th node version so a historical read
  // applies at most ~K deltas instead of walking the whole chain
  // (see delta/version_chain.h). 0 disables keyframes.
  uint32_t keyframe_interval = 16;
  // Capacity of the process-wide version-reconstruction cache
  // (delta/recon_cache.h); applied at Ham construction. 0 disables.
  size_t recon_cache_bytes = 8ull << 20;

  // Server self-protection ------------------------------------------
  // A session that holds an open transaction but has been silent (no
  // operation on its context) for longer than this is force-aborted by
  // a watchdog thread, releasing the graph's writer slot so a hung or
  // abandoned editor never wedges the graph for every other author.
  // Every operation on the context renews the lease. 0 disables the
  // watchdog (the library-embedding default; the server turns it on).
  uint64_t txn_lease_ms = 0;
  // Caps below reject oversized inputs with kInvalidArgument before
  // any WAL write. They apply at the public API boundary only — WAL
  // replay is exempt, so shrinking a cap never makes an existing graph
  // unrecoverable. 0 = unlimited.
  size_t max_node_content_bytes = 16ull << 20;
  size_t max_attribute_name_bytes = 4096;
  size_t max_attribute_value_bytes = 1ull << 20;
  size_t max_attrs_per_entity = 4096;

  // Replication (ROADMAP item 3) ------------------------------------
  // Run this engine as a replication follower: client mutations are
  // rejected with kReadOnly while ReplicaApply/ReplicaInstallSnapshot
  // keep the state in step with a primary; Promote() flips it live.
  bool follower_mode = false;
  // Checkpointed WAL generations a primary retains so followers can
  // tail across a checkpoint instead of re-snapshotting.
  uint32_t repl_keep_wal_generations = 1;

  // Request tracing (common/trace.h) --------------------------------
  // Keep 1-in-N traces (0 disables tracing; 1 keeps every trace).
  // Applied process-wide at Ham construction, like recon_cache_bytes.
  uint32_t trace_sample_n = 0;
  // A span lasting at least this long is always kept, logged as a
  // JSON slow-op line, and retained in the slow-op ring regardless of
  // sampling. 0 disables the slow path.
  uint64_t trace_slow_us = 0;

  // Determinism / simulation hooks ----------------------------------
  // Clock for lease stamps and expiry sweeps. nullptr = the
  // process-wide real clock.
  TimeSource* time_source = nullptr;
  // When true, the lease watchdog thread is never started even with
  // txn_lease_ms > 0; the embedder calls SweepLeasesNow() itself. The
  // simulation harness ticks it from the virtual clock.
  bool manual_lease_sweep = false;
  // Seed for CreateGraph's project-id generator. 0 = seed from the
  // clock (the uniqueness-only default); the simulation harness pins
  // it so graph creation is reproducible.
  uint64_t project_id_seed = 0;
};

// Process-wide registry binding demon values to callables — the
// in-process stand-in for the paper's planned Smalltalk/Modula-2/C
// demon bodies. Demon values that start with the registered name
// (e.g. value "mail bob" fires callback "mail") receive the full
// value in the invocation record.
class DemonRegistry {
 public:
  void Register(const std::string& name, DemonCallback callback);
  void Unregister(const std::string& name);
  // Invokes the callback whose name is the first word of
  // `invocation.demon`, if registered. Returns true if one fired.
  bool Fire(const DemonInvocation& invocation) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, DemonCallback> callbacks_;
};

class Ham final : public HamInterface {
 public:
  explicit Ham(Env* env, HamOptions options = HamOptions());
  ~Ham() override;

  Ham(const Ham&) = delete;
  Ham& operator=(const Ham&) = delete;

  DemonRegistry& demons() { return demon_registry_; }
  const HamOptions& options() const { return options_; }

  // Reads the ProjectId stored in a graph directory without opening
  // the graph — what command-line tools use to address a database.
  static Result<ProjectId> ReadProjectId(Env* env, const std::string& dir);

  // True while this engine is a replication follower (client
  // mutations rejected with kReadOnly); cleared by Promote().
  bool follower() const {
    return follower_mode_.load(std::memory_order_acquire);
  }

  // Follower apply surface (driven by rpc::Replicator in-process; not
  // part of HamInterface — the wire never carries these directly):
  // Persists a streamed chunk of raw WAL frames and applies the valid
  // prefix to the live state. `expected_epoch` must match the local
  // store's generation. CRC validation uses the same tolerant ReadLog
  // machinery as recovery; a torn tail keeps the valid prefix and is
  // reported, not fatal. kCorruption means local state has diverged
  // and the caller must resync from a snapshot.
  Result<ReplicaApplyResult> ReplicaApply(const std::string& directory,
                                          uint64_t expected_epoch,
                                          std::string_view frames);
  // Replaces the local store with a primary-shipped snapshot at
  // `epoch`, adopting fencing term `term` (bootstrap or resync).
  Status ReplicaInstallSnapshot(const std::string& directory,
                                std::string_view meta,
                                std::string_view snapshot, uint64_t epoch,
                                uint64_t term);
  // Local checkpoint advancing the follower's generation to
  // `to_epoch` (current + 1) after the old generation fully drained —
  // deterministic replay makes the local snapshot equivalent to the
  // primary's at the same boundary.
  Status ReplicaRoll(const std::string& directory, uint64_t to_epoch);
  // Records follower freshness for ReplStatus and the lag gauge.
  void NoteReplProgress(const std::string& directory, uint64_t lag_bytes,
                        bool caught_up);

  // HamInterface replication overrides (primary side + health).
  Result<ReplFetchResult> ReplFetch(const ReplFetchRequest& request) override;
  Result<ReplNodeStatus> ReplStatus(const std::string& directory) override;
  Result<std::vector<std::string>> ReplListGraphs(
      const std::string& root) override;
  Result<uint64_t> Promote() override;

  // Local administration (not part of HamInterface):
  // Structural integrity check; one message per problem, empty = clean.
  Result<std::vector<std::string>> VerifyGraph(Context ctx);
  // Drops version history strictly older than the version in effect at
  // `before` across the whole graph, then checkpoints (the reclaimed
  // space only materializes in a fresh snapshot). Disallowed inside an
  // open transaction. Returns the fresh snapshot's size in bytes.
  Result<uint64_t> PruneHistory(Context ctx, Time before);
  // Runs one lease-expiry sweep immediately, exactly as the watchdog
  // thread would (no-op when txn_lease_ms is 0). For embedders that
  // own the clock — the simulation harness calls this on virtual-time
  // ticks instead of running the watchdog thread
  // (HamOptions::manual_lease_sweep).
  void SweepLeasesNow();

  // HamInterface implementation ------------------------------------
  Result<CreateGraphResult> CreateGraph(const std::string& directory,
                                        uint32_t protections) override;
  Status DestroyGraph(ProjectId project,
                      const std::string& directory) override;
  Result<Context> OpenGraph(ProjectId project, const std::string& machine,
                            const std::string& directory) override;
  Status CloseGraph(Context ctx) override;

  Status BeginTransaction(Context ctx) override;
  Status CommitTransaction(Context ctx) override;
  Status AbortTransaction(Context ctx) override;

  Result<AddNodeResult> AddNode(Context ctx, bool keep_history) override;
  Status DeleteNode(Context ctx, NodeIndex node) override;
  Result<AddLinkResult> AddLink(Context ctx, const LinkPt& from,
                                const LinkPt& to) override;
  Result<AddLinkResult> CopyLink(Context ctx, LinkIndex link, Time time,
                                 bool copy_source,
                                 const LinkPt& other) override;
  Status DeleteLink(Context ctx, LinkIndex link) override;

  Result<SubGraph> LinearizeGraph(
      Context ctx, NodeIndex start, Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<AttributeIndex>& node_attrs,
      const std::vector<AttributeIndex>& link_attrs) override;
  Result<SubGraph> GetGraphQuery(
      Context ctx, Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<AttributeIndex>& node_attrs,
      const std::vector<AttributeIndex>& link_attrs) override;
  Result<QueryExplain> GetGraphQueryExplained(
      Context ctx, Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<AttributeIndex>& node_attrs,
      const std::vector<AttributeIndex>& link_attrs,
      const QueryOptions& options) override;

  Result<OpenNodeResult> OpenNode(
      Context ctx, NodeIndex node, Time time,
      const std::vector<AttributeIndex>& attrs) override;
  Status ModifyNode(Context ctx, NodeIndex node, Time expected_time,
                    const std::string& contents,
                    const std::vector<AttachmentUpdate>& attachments,
                    const std::string& explanation) override;
  Result<Time> GetNodeTimeStamp(Context ctx, NodeIndex node) override;
  Status ChangeNodeProtection(Context ctx, NodeIndex node,
                              uint32_t protections) override;
  Result<NodeVersions> GetNodeVersions(Context ctx, NodeIndex node) override;
  Result<std::vector<delta::Difference>> GetNodeDifferences(
      Context ctx, NodeIndex node, Time t1, Time t2) override;

  Result<LinkEndResult> GetToNode(Context ctx, LinkIndex link,
                                  Time time) override;
  Result<LinkEndResult> GetFromNode(Context ctx, LinkIndex link,
                                    Time time) override;

  Result<std::vector<AttributeEntry>> GetAttributes(Context ctx,
                                                    Time time) override;
  Result<std::vector<std::string>> GetAttributeValues(Context ctx,
                                                      AttributeIndex attr,
                                                      Time time) override;
  Result<AttributeIndex> GetAttributeIndex(Context ctx,
                                           const std::string& name) override;

  Status SetNodeAttributeValue(Context ctx, NodeIndex node,
                               AttributeIndex attr,
                               const std::string& value) override;
  Status DeleteNodeAttribute(Context ctx, NodeIndex node,
                             AttributeIndex attr) override;
  Result<std::string> GetNodeAttributeValue(Context ctx, NodeIndex node,
                                            AttributeIndex attr,
                                            Time time) override;
  Result<std::vector<AttributeValueEntry>> GetNodeAttributes(
      Context ctx, NodeIndex node, Time time) override;

  Status SetLinkAttributeValue(Context ctx, LinkIndex link,
                               AttributeIndex attr,
                               const std::string& value) override;
  Status DeleteLinkAttribute(Context ctx, LinkIndex link,
                             AttributeIndex attr) override;
  Result<std::string> GetLinkAttributeValue(Context ctx, LinkIndex link,
                                            AttributeIndex attr,
                                            Time time) override;
  Result<std::vector<AttributeValueEntry>> GetLinkAttributes(
      Context ctx, LinkIndex link, Time time) override;

  Status SetGraphDemonValue(Context ctx, Event event,
                            const std::string& demon) override;
  Result<std::vector<DemonEntry>> GetGraphDemons(Context ctx,
                                                 Time time) override;
  Status SetNodeDemon(Context ctx, NodeIndex node, Event event,
                      const std::string& demon) override;
  Result<std::vector<DemonEntry>> GetNodeDemons(Context ctx, NodeIndex node,
                                                Time time) override;

  Result<ContextInfo> CreateContext(Context ctx,
                                    const std::string& name) override;
  Result<Context> OpenContext(Context ctx, ThreadId thread) override;
  Status MergeContext(Context ctx, ThreadId source, bool force) override;
  Result<std::vector<ContextInfo>> ListContexts(Context ctx) override;

  Status Checkpoint(Context ctx) override;
  Result<GraphStats> GetStats(Context ctx) override;
  Result<ThreadId> ContextThread(Context ctx) override;

 private:
  // One open graph database shared by all sessions on it.
  struct GraphHandle {
    std::string directory;
    ProjectId project = 0;
    uint32_t protections = 0;
    std::unique_ptr<DurableStore> store;
    GraphState state;
    // (event, scope) -> armed-demon map for the main thread; lets the
    // commit path skip the graph lock when no demon is armed. Built on
    // load, folded forward from committed ops (see demon_index.h).
    DemonIndex demon_index;

    // Guards state + store. Read-only operations take it shared and
    // run in parallel across server threads; anything that mutates
    // state, ticks the clock, or writes the store takes it exclusive.
    std::shared_mutex mu;
    // Writer-slot waiters (condition_variable_any: it must wait on the
    // shared_mutex).
    std::condition_variable_any writer_cv;
    uint64_t writer_session = 0;  // session holding the writer slot
    int open_sessions = 0;

    // Replication bookkeeping. repl_mu guards commit_seq and
    // followers; it nests strictly inside mu (taken after, released
    // before) and ReplFetch's long-poll waits on it *without* holding
    // mu, so a poller never blocks commits.
    std::mutex repl_mu;
    std::condition_variable repl_cv;
    uint64_t commit_seq = 0;  // bumped per durable commit/checkpoint
    struct FollowerAck {
      uint64_t epoch = 0;
      uint64_t offset = 0;
      uint64_t lag_bytes = 0;
      uint64_t last_fetch_us = 0;
    };
    std::map<std::string, FollowerAck> followers;  // by follower_id

    // Follower-side freshness, written by NoteReplProgress (the
    // replicator's thread) and read by ReplStatus (server threads).
    std::atomic<uint64_t> repl_lag_bytes{0};
    std::atomic<uint64_t> repl_caught_up_us{0};  // 0 = never yet
  };

  // A session created by OpenGraph/OpenContext. Transaction state
  // (in_txn/overlay/ops/lease_aborted) is guarded by op_mu: normally
  // only the session's connection thread touches it, but the lease
  // watchdog may abort an expired transaction from its own thread.
  // op_mu is recursive because some operations call others on the same
  // context (copyLink invokes addLink).
  struct Session {
    uint64_t id = 0;
    std::shared_ptr<GraphHandle> graph;
    ThreadId thread = kMainThread;

    std::recursive_mutex op_mu;
    std::atomic<bool> in_txn{false};
    GraphState::TxnOverlay overlay;
    std::vector<Op> ops;
    // Set by the watchdog when it aborts the session's transaction;
    // tells the session's next commit/abort/mutation what happened.
    bool lease_aborted = false;
    // Lease renewal stamp, updated on operation entry and exit so a
    // long-running op is not mistaken for a silent session. Read
    // against the owning Ham's time source, which `time` caches so
    // LockedSession can renew without a backpointer.
    TimeSource* time = nullptr;
    std::atomic<uint64_t> last_touch_us{0};
  };

  // FindSession's return value: the session plus its held op_mu. The
  // lock is taken *after* registry_mu_ is released (never the other
  // way around) and renews the lease on both acquisition and release.
  class LockedSession {
   public:
    explicit LockedSession(std::shared_ptr<Session> session);
    ~LockedSession();
    LockedSession(LockedSession&&) = default;
    LockedSession& operator=(LockedSession&&) = default;
    LockedSession(const LockedSession&) = delete;
    LockedSession& operator=(const LockedSession&) = delete;

    Session* operator->() const { return session_.get(); }
    Session* get() const { return session_.get(); }

   private:
    std::shared_ptr<Session> session_;
    std::unique_lock<std::recursive_mutex> lock_;
  };

  Result<LockedSession> FindSession(Context ctx);

  // Lease watchdog: periodically force-aborts transactions whose
  // session lease expired (see HamOptions::txn_lease_ms).
  void LeaseWatchdogLoop();
  void SweepExpiredLeases(uint64_t lease_us);

  // Loads or creates the shared handle for a directory.
  Result<std::shared_ptr<GraphHandle>> LoadGraph(const std::string& directory);

  // Acquires/releases the per-graph writer slot for a session.
  void AcquireWriter(GraphHandle* graph, uint64_t session);
  void ReleaseWriter(GraphHandle* graph, uint64_t session);

  // Stages `*op` in the session's transaction, opening an implicit
  // single-op transaction when none is active. On success the op is
  // recorded for the WAL (implicit transactions commit immediately)
  // and op->time carries the assigned timestamp.
  Status Execute(Session* session, uint64_t session_id, Op* op);

  // Applies the commit protocol: WAL append, fold overlay, demons.
  Status CommitLocked(GraphHandle* graph, Session* session);

  // Wakes ReplFetch long-pollers after a durable commit or checkpoint.
  static void NotifyReplWaiters(GraphHandle* graph);

  // Pins a follower-side graph handle so it outlives its sessions
  // (replicated graphs stay open even with no clients) and Promote()
  // can reach every one of them.
  void PinReplicaGraph(const std::string& directory,
                       std::shared_ptr<GraphHandle> handle);

  // kReadOnly when this engine is a follower — the guard every client
  // mutation path runs first.
  Status RejectIfFollower() const;

  // Fires demons for a committed op list (outside the graph lock).
  void FireDemons(GraphHandle* graph, ThreadId thread,
                  const std::vector<Op>& ops);
  void FireEventDemons(GraphHandle* graph, ThreadId thread, Event event,
                       NodeIndex node, LinkIndex link, Time time);

  // Serializes a PROJECT metadata blob.
  static std::string EncodeMeta(ProjectId project, uint32_t protections);
  static Status DecodeMeta(std::string_view meta, ProjectId* project,
                           uint32_t* protections);

  Env* env_;
  HamOptions options_;
  // Injectable clock (HamOptions::time_source); never null.
  TimeSource* time_;
  // Project-id generator (HamOptions::project_id_seed); guarded by
  // registry_mu_.
  Random project_rng_;
  DemonRegistry demon_registry_;

  std::atomic<bool> follower_mode_{false};

  std::mutex registry_mu_;  // guards graphs_, sessions_ and repl_pins_
  std::map<std::string, std::weak_ptr<GraphHandle>> graphs_;
  // Strong references to replicated graphs on a follower (see
  // PinReplicaGraph).
  std::map<std::string, std::shared_ptr<GraphHandle>> repl_pins_;
  // shared_ptr so the watchdog can hold a candidate across the
  // registry lock's release without racing session destruction.
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_ = 1;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread lease_watchdog_;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_HAM_H_

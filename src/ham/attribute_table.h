// AttributeTable: the per-graph mapping between attribute names and
// their unique AttributeIndex values. getAttributeIndex interns a name
// on first use ("If no attribute exists, then creates one"), and
// getAttributes(Context, Time) reports the attributes "that existed at
// time Time" — so each definition carries its creation time.

#ifndef NEPTUNE_HAM_ATTRIBUTE_TABLE_H_
#define NEPTUNE_HAM_ATTRIBUTE_TABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

class AttributeTable {
 public:
  // Index for `name`, or NotFound if it was never interned.
  Result<AttributeIndex> Lookup(std::string_view name) const;

  // Interns `name` at `t`, assigning the next index; returns the
  // existing index if already present. `forced_index` (non-zero)
  // replays a recovered assignment and must match what the table
  // would assign.
  Result<AttributeIndex> Intern(std::string_view name, Time t,
                                AttributeIndex forced_index = 0);

  // Name for `index`, or NotFound.
  Result<std::string> Name(AttributeIndex index) const;

  // True iff `index` was defined at or before `t` (0 = now).
  bool ExistedAt(AttributeIndex index, Time t) const;

  // All attributes that existed at `t`, ascending by index.
  std::vector<AttributeEntry> AllAt(Time t) const;

  size_t size() const { return defs_.size(); }
  AttributeIndex next_index() const {
    return static_cast<AttributeIndex>(defs_.size()) + 1;
  }

  void EncodeTo(std::string* out) const;
  static Result<AttributeTable> DecodeFrom(std::string_view* in);

 private:
  struct Def {
    std::string name;
    Time created = 0;
  };

  std::vector<Def> defs_;  // defs_[i] has index i+1
  std::unordered_map<std::string, AttributeIndex> by_name_;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_ATTRIBUTE_TABLE_H_

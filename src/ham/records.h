// The persistent record types of one hypergraph: nodes, links and
// their demon slots. Records never forget: deletion is a tombstone
// timestamp so that "it is possible to see *any* version of the
// hyperdocument back to its beginning" (paper §2.2).

#ifndef NEPTUNE_HAM_RECORDS_H_
#define NEPTUNE_HAM_RECORDS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "delta/version_chain.h"
#include "ham/attribute_history.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

// Versioned event -> demon-value bindings ("Creates a new version of
// the node demon. If Demon is null then demon is disabled"). The empty
// string is the null/disabled demon.
class DemonHistory {
 public:
  void Set(Event event, Time t, std::string demon);

  // Demon bound to `event` at `t` (0 = now); empty when disabled.
  std::string Get(Event event, Time t) const;

  // All (event, demon) bindings active at `t`.
  std::vector<DemonEntry> GetAll(Time t) const;

  bool empty() const { return entries_.empty(); }

  void EncodeTo(std::string* out) const;
  static Result<DemonHistory> DecodeFrom(std::string_view* in);

 private:
  struct Entry {
    Time time = 0;
    std::string demon;
  };
  // Per event, ascending time.
  std::vector<std::pair<Event, std::vector<Entry>>> entries_;
};

// One end of a link. For a track_current end the HAM keeps "a history
// of link attachment offsets ... allowing the link to be attached to
// different offsets for each version of the node" (paper §3).
struct LinkEnd {
  NodeIndex node = 0;
  bool track_current = true;
  Time pinned_time = 0;  // node version this end refers to, if pinned

  // Attachment offsets, ascending by time.
  std::vector<std::pair<Time, uint64_t>> positions;

  // Offset in effect at `t` (0 = latest).
  uint64_t PositionAt(Time t) const;

  // Records a new offset at `t`; unversioned ends are overwritten.
  void SetPosition(Time t, uint64_t position, bool versioned);

  void EncodeTo(std::string* out) const;
  static Result<LinkEnd> DecodeFrom(std::string_view* in);
};

struct NodeRecord {
  NodeIndex index = 0;
  bool is_archive = true;
  uint32_t protections = 0644;
  Time created = 0;
  Time deleted = 0;  // 0 = alive

  delta::VersionChain contents{delta::ChainMode::kBackwardDelta};
  // "Minor versions are updates that relate to the node but do not
  // change its contents, for example adding a link or defining an
  // attribute value."
  std::vector<VersionEntry> minor_versions;
  AttributeHistory attributes;
  DemonHistory demons;

  // Links ever attached (including since-deleted ones; liveness is
  // resolved against the link records at a given time).
  std::vector<LinkIndex> out_links;
  std::vector<LinkIndex> in_links;

  bool ExistsAt(Time t) const {
    if (t == 0) return created != 0 && deleted == 0;
    return created != 0 && created <= t && (deleted == 0 || t < deleted);
  }

  void EncodeTo(std::string* out) const;
  static Result<NodeRecord> DecodeFrom(std::string_view* in);
};

struct LinkRecord {
  LinkIndex index = 0;
  Time created = 0;
  Time deleted = 0;  // 0 = alive

  LinkEnd from;
  LinkEnd to;
  AttributeHistory attributes;

  bool ExistsAt(Time t) const {
    if (t == 0) return created != 0 && deleted == 0;
    return created != 0 && created <= t && (deleted == 0 || t < deleted);
  }

  void EncodeTo(std::string* out) const;
  static Result<LinkRecord> DecodeFrom(std::string_view* in);
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_RECORDS_H_

#include "ham/ops.h"

#include "common/coding.h"

namespace neptune {
namespace ham {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAddNode:
      return "addNode";
    case OpKind::kDeleteNode:
      return "deleteNode";
    case OpKind::kAddLink:
      return "addLink";
    case OpKind::kDeleteLink:
      return "deleteLink";
    case OpKind::kModifyNode:
      return "modifyNode";
    case OpKind::kSetNodeAttribute:
      return "setNodeAttributeValue";
    case OpKind::kDeleteNodeAttribute:
      return "deleteNodeAttribute";
    case OpKind::kSetLinkAttribute:
      return "setLinkAttributeValue";
    case OpKind::kDeleteLinkAttribute:
      return "deleteLinkAttribute";
    case OpKind::kInternAttribute:
      return "getAttributeIndex";
    case OpKind::kChangeNodeProtection:
      return "changeNodeProtection";
    case OpKind::kSetGraphDemon:
      return "setGraphDemonValue";
    case OpKind::kSetNodeDemon:
      return "setNodeDemon";
    case OpKind::kCreateContext:
      return "createContext";
    case OpKind::kMergeContext:
      return "mergeContext";
    case OpKind::kPruneHistory:
      return "pruneHistory";
  }
  return "unknown";
}

namespace {

void EncodeLinkPt(const LinkPt& pt, std::string* out) {
  PutVarint64(out, pt.node);
  PutVarint64(out, pt.position);
  PutVarint64(out, pt.time);
  out->push_back(pt.track_current ? 1 : 0);
}

bool DecodeLinkPt(std::string_view* in, LinkPt* pt) {
  if (!GetVarint64(in, &pt->node) || !GetVarint64(in, &pt->position) ||
      !GetVarint64(in, &pt->time) || in->empty()) {
    return false;
  }
  pt->track_current = in->front() != 0;
  in->remove_prefix(1);
  return true;
}

}  // namespace

void EncodeOp(const Op& op, std::string* out) {
  out->push_back(static_cast<char>(op.kind));
  PutVarint64(out, op.time);
  PutVarint64(out, op.thread);
  PutVarint64(out, op.node);
  PutVarint64(out, op.link);
  PutVarint64(out, op.attr);
  PutVarint64(out, op.arg);
  out->push_back(op.flag ? 1 : 0);
  out->push_back(static_cast<char>(op.event));
  PutLengthPrefixed(out, op.value);
  PutLengthPrefixed(out, op.extra);
  EncodeLinkPt(op.from, out);
  EncodeLinkPt(op.to, out);
  PutVarint64(out, op.attachments.size());
  for (const LinkPt& pt : op.attachments) EncodeLinkPt(pt, out);
}

Result<Op> DecodeOp(std::string_view* in) {
  Op op;
  if (in->empty()) return Status::Corruption("op: empty input");
  const uint8_t kind = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  if (kind < static_cast<uint8_t>(OpKind::kAddNode) ||
      kind > static_cast<uint8_t>(OpKind::kPruneHistory)) {
    return Status::Corruption("op: unknown kind " + std::to_string(kind));
  }
  op.kind = static_cast<OpKind>(kind);
  if (!GetVarint64(in, &op.time) || !GetVarint64(in, &op.thread) ||
      !GetVarint64(in, &op.node) || !GetVarint64(in, &op.link) ||
      !GetVarint64(in, &op.attr) || !GetVarint64(in, &op.arg) ||
      in->size() < 2) {
    return Status::Corruption("op: truncated header");
  }
  op.flag = in->front() != 0;
  in->remove_prefix(1);
  op.event = static_cast<Event>(in->front());
  in->remove_prefix(1);
  std::string_view value;
  std::string_view extra;
  if (!GetLengthPrefixed(in, &value) || !GetLengthPrefixed(in, &extra)) {
    return Status::Corruption("op: truncated strings");
  }
  op.value.assign(value);
  op.extra.assign(extra);
  if (!DecodeLinkPt(in, &op.from) || !DecodeLinkPt(in, &op.to)) {
    return Status::Corruption("op: truncated link points");
  }
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("op: truncated attachment count");
  }
  op.attachments.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LinkPt pt;
    if (!DecodeLinkPt(in, &pt)) {
      return Status::Corruption("op: truncated attachment");
    }
    op.attachments.push_back(pt);
  }
  return op;
}

std::string EncodeTransaction(const std::vector<Op>& ops) {
  std::string out;
  PutVarint64(&out, ops.size());
  for (const Op& op : ops) EncodeOp(op, &out);
  return out;
}

Result<std::vector<Op>> DecodeTransaction(std::string_view payload) {
  uint64_t n = 0;
  if (!GetVarint64(&payload, &n)) {
    return Status::Corruption("transaction: truncated op count");
  }
  std::vector<Op> ops;
  ops.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    NEPTUNE_ASSIGN_OR_RETURN(Op op, DecodeOp(&payload));
    ops.push_back(std::move(op));
  }
  if (!payload.empty()) {
    return Status::Corruption("transaction: trailing bytes");
  }
  return ops;
}

}  // namespace ham
}  // namespace neptune

// AttributeValueIndex: an inverted index from (attribute, value) to
// the live main-thread nodes currently carrying that value —
// getGraphQuery's fast path for the common predicate shape the paper
// uses everywhere (`document = requirements & ...`).
//
// Design: lazily rebuilt. Every mutation of the main thread bumps the
// graph's mutation epoch; a query that wants the index rebuilds it iff
// its epoch is stale. This keeps the write path entirely index-free
// (writes stay exactly as durable/fast as without the index) and makes
// the index trivially consistent — the classic read-optimized
// trade-off, measured as the B3 ablation in bench_query.
//
// The index answers only current-time (time == 0), main-thread,
// no-open-transaction queries; everything else scans. Correctness
// never depends on the index: candidates it returns are still run
// through the full predicate.

#ifndef NEPTUNE_HAM_ATTRIBUTE_INDEX_H_
#define NEPTUNE_HAM_ATTRIBUTE_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ham/records.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

class AttributeValueIndex {
 public:
  // True iff the index matches `epoch` and can serve lookups.
  bool FreshAt(uint64_t epoch) const { return built_ && epoch_ == epoch; }

  // Rebuilds from `nodes` (live main-thread records only are indexed).
  void Rebuild(const std::unordered_map<NodeIndex, NodeRecord>& nodes,
               uint64_t epoch);

  // Node indices whose current value of `attr` equals `value`,
  // ascending. Precondition: FreshAt(current epoch).
  const std::vector<NodeIndex>& Lookup(AttributeIndex attr,
                                       const std::string& value) const;

  // Candidate count for planning (chooses the most selective conjunct).
  size_t Cardinality(AttributeIndex attr, const std::string& value) const {
    return Lookup(attr, value).size();
  }

  size_t entry_count() const { return entries_; }
  uint64_t rebuild_count() const { return rebuilds_; }

 private:
  bool built_ = false;
  uint64_t epoch_ = 0;
  size_t entries_ = 0;
  uint64_t rebuilds_ = 0;
  std::map<std::pair<AttributeIndex, std::string>, std::vector<NodeIndex>>
      by_value_;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_ATTRIBUTE_INDEX_H_

// AttributeValueIndex: an inverted index from (attribute, value) to
// the live main-thread nodes currently carrying that value —
// getGraphQuery's fast path for the common predicate shape the paper
// uses everywhere (`document = requirements & ...`).
//
// Design: built lazily on the first eligible query, then maintained
// incrementally. Committed mutations stage (node, attr, old -> new)
// deltas (see GraphState); the next query applies them under the
// index mutex instead of rebuilding, so the first query after a write
// pays O(changes), not O(graph). A full rebuild happens only when the
// index has never been built, or after operations that restructure
// records wholesale (context merge, history prune, recovery) where
// per-op deltas are not tracked. The write path stays index-free:
// staging a delta is an O(1) append, and commits stay exactly as
// durable/fast as without the index (B3 ablation in bench_query).
//
// The index answers only current-time (time == 0), main-thread,
// no-open-transaction queries — see GraphState::IndexEligible.
// Correctness never depends on the index: candidates it returns are
// still run through the full predicate.

#ifndef NEPTUNE_HAM_ATTRIBUTE_INDEX_H_
#define NEPTUNE_HAM_ATTRIBUTE_INDEX_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ham/records.h"
#include "ham/types.h"

namespace neptune {
namespace ham {

// One committed attribute change, staged by GraphState at commit time
// and folded into the index on the next query.
struct AttributeIndexDelta {
  NodeIndex node = 0;
  AttributeIndex attr = 0;
  std::optional<std::string> old_value;  // posting removed, when set
  std::optional<std::string> new_value;  // posting added, when set
};

class AttributeValueIndex {
 public:
  // True iff the index matches `epoch` and can serve lookups.
  bool FreshAt(uint64_t epoch) const { return built_ && epoch_ == epoch; }

  bool built() const { return built_; }

  // Rebuilds from `nodes` (live main-thread records only are indexed).
  void Rebuild(const std::unordered_map<NodeIndex, NodeRecord>& nodes,
               uint64_t epoch);

  // Folds one committed change into the posting lists. Precondition:
  // built(); the caller serializes calls (GraphState's index mutex).
  void ApplyDelta(const AttributeIndexDelta& delta);

  // Declares the delta-maintained index consistent with `epoch` after
  // the pending queue has been drained.
  void MarkFresh(uint64_t epoch) { epoch_ = epoch; }

  // Node indices whose current value of `attr` equals `value`,
  // ascending. Precondition: FreshAt(current epoch).
  const std::vector<NodeIndex>& Lookup(AttributeIndex attr,
                                       const std::string& value) const;

  // Candidate count for planning (chooses the most selective conjunct).
  size_t Cardinality(AttributeIndex attr, const std::string& value) const {
    return Lookup(attr, value).size();
  }

  size_t entry_count() const { return entries_; }
  uint64_t rebuild_count() const { return rebuilds_; }
  uint64_t applied_delta_count() const { return applied_deltas_; }

 private:
  bool built_ = false;
  uint64_t epoch_ = 0;
  size_t entries_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t applied_deltas_ = 0;
  std::map<std::pair<AttributeIndex, std::string>, std::vector<NodeIndex>>
      by_value_;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_HAM_ATTRIBUTE_INDEX_H_

#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace neptune {

namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(std::string_view op, const std::string& path, int err) {
  std::string msg;
  msg.append(op);
  msg.append(" ");
  msg.append(path);
  msg.append(": ");
  msg.append(std::strerror(err));
  if (err == ENOENT) return Status::NotFound(msg);
  if (err == EACCES || err == EPERM) return Status::PermissionDenied(msg);
  if (err == EEXIST) return Status::AlreadyExists(msg);
  return Status::IOError(msg);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return ErrnoStatus("close", path_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override {
    const std::string tmp = path + ".tmp";
    Status status = WriteTmpFile(tmp, data);
    if (status.ok()) status = RenameFile(tmp, path);
    if (!status.ok()) ::unlink(tmp.c_str());  // Don't leave orphans behind.
    return status;
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) return Status::IOError("rm -r " + path + ": " + ec.message());
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> GetChildren(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (auto it = fs::directory_iterator(dir, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Status::IOError("readdir " + dir + ": " + ec.message());
    return names;
  }

  Status WriteTmpFile(const std::string& tmp, std::string_view data) {
    NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             NewWritableFile(tmp, /*truncate=*/true));
    NEPTUNE_RETURN_IF_ERROR(file->Append(data));
    NEPTUNE_RETURN_IF_ERROR(file->Sync());
    return file->Close();
  }

  Status SetPermissions(const std::string& path, uint32_t mode) override {
    if (::chmod(path.c_str(), static_cast<mode_t>(mode)) != 0) {
      return ErrnoStatus("chmod", path, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // Intentionally leaked singleton.
  return env;
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (!out.empty() && out.back() != '/') out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace neptune

#include "storage/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/metrics.h"

namespace neptune {

namespace {
constexpr size_t kHeaderSize = 8;  // crc(4) + length(4)
}  // namespace

Status LogWriter::AddRecord(std::string_view payload, bool sync) {
  char header[kHeaderSize];
  EncodeFixed32(header, crc32c::Mask(crc32c::Value(payload)));
  EncodeFixed32(header + 4, static_cast<uint32_t>(payload.size()));
  // One Append call per frame keeps the window for interleaved torn
  // writes as small as the OS allows; correctness never depends on it
  // because the reader validates the CRC.
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.append(header, kHeaderSize);
  frame.append(payload);
  NEPTUNE_RETURN_IF_ERROR(file_->Append(frame));
  NEPTUNE_METRIC_COUNT("storage.wal.appends", 1);
  NEPTUNE_METRIC_COUNT("storage.wal.bytes", frame.size());
  if (sync) {
    NEPTUNE_METRIC_TIMED(timer, "storage.wal.fsync");
    return file_->Sync();
  }
  return Status::OK();
}

Status LogWriter::AddRawFrames(std::string_view frames, bool sync) {
  NEPTUNE_RETURN_IF_ERROR(file_->Append(frames));
  NEPTUNE_METRIC_COUNT("storage.wal.appends", 1);
  NEPTUNE_METRIC_COUNT("storage.wal.bytes", frames.size());
  if (sync) {
    NEPTUNE_METRIC_TIMED(timer, "storage.wal.fsync");
    return file_->Sync();
  }
  return Status::OK();
}

Result<LogReadResult> ReadLog(std::string_view data) {
  LogReadResult out;
  uint64_t offset = 0;
  while (data.size() - offset >= kHeaderSize) {
    const char* p = data.data() + offset;
    const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(p));
    const uint32_t length = DecodeFixed32(p + 4);
    if (data.size() - offset - kHeaderSize < length) {
      // Short payload: torn tail.
      out.truncated_tail = true;
      break;
    }
    std::string_view payload = data.substr(offset + kHeaderSize, length);
    if (crc32c::Value(payload) != expected_crc) {
      // A bad CRC on the final frame is an ordinary torn tail; anywhere
      // earlier the log body itself is damaged. Either way the valid
      // prefix is what recovery gets — availability over completeness —
      // and the caller decides how loudly to report it.
      out.truncated_tail = true;
      out.mid_log_corruption = offset + kHeaderSize + length < data.size();
      break;
    }
    out.records.emplace_back(payload);
    offset += kHeaderSize + length;
  }
  if (offset < data.size() && !out.truncated_tail) {
    // Fewer than kHeaderSize trailing bytes: torn header.
    out.truncated_tail = true;
  }
  out.valid_bytes = offset;
  out.dropped_bytes = data.size() - offset;
  return out;
}

}  // namespace neptune

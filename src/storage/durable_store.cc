#include "storage/durable_store.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace neptune {

namespace {

constexpr char kProjectFile[] = "PROJECT";
constexpr char kCurrentFile[] = "CURRENT";
constexpr char kSnapMagic[] = "NEPSNAP1";  // 8 bytes

// SNAP file layout: magic(8) | masked_crc32c(blob)(4) | fixed64 len | blob.
std::string EncodeSnapshot(std::string_view blob) {
  std::string out;
  out.reserve(20 + blob.size());
  out.append(kSnapMagic, 8);
  PutFixed32(&out, crc32c::Mask(crc32c::Value(blob)));
  PutFixed64(&out, blob.size());
  out.append(blob);
  return out;
}

Result<std::string> DecodeSnapshot(std::string_view data,
                                   const std::string& path) {
  std::string_view in = data;
  if (in.size() < 20 || in.substr(0, 8) != std::string_view(kSnapMagic, 8)) {
    return Status::Corruption("bad snapshot magic in " + path);
  }
  in.remove_prefix(8);
  uint32_t masked_crc = 0;
  uint64_t len = 0;
  GetFixed32(&in, &masked_crc);
  GetFixed64(&in, &len);
  if (in.size() != len) {
    return Status::Corruption("snapshot length mismatch in " + path);
  }
  if (crc32c::Value(in) != crc32c::Unmask(masked_crc)) {
    return Status::Corruption("snapshot checksum mismatch in " + path);
  }
  return std::string(in);
}

}  // namespace

DurableStore::~DurableStore() {
  if (wal_ != nullptr) wal_->Close();
}

std::string DurableStore::SnapName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "SNAP-%06" PRIu64, epoch);
  return buf;
}

std::string DurableStore::WalName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "WAL-%06" PRIu64, epoch);
  return buf;
}

bool DurableStore::Exists(Env* env, const std::string& dir) {
  return env->FileExists(JoinPath(dir, kProjectFile));
}

Result<std::string> DurableStore::ReadMeta(Env* env, const std::string& dir) {
  return env->ReadFileToString(JoinPath(dir, kProjectFile));
}

Result<std::unique_ptr<DurableStore>> DurableStore::Create(
    Env* env, const std::string& dir, std::string_view meta,
    std::string_view initial_snapshot, uint32_t dir_mode) {
  if (Exists(env, dir)) {
    return Status::AlreadyExists("a graph already exists in " + dir);
  }
  NEPTUNE_RETURN_IF_ERROR(env->CreateDir(dir));
  if (dir_mode != 0) {
    NEPTUNE_RETURN_IF_ERROR(env->SetPermissions(dir, dir_mode));
  }
  const uint64_t epoch = 1;
  NEPTUNE_RETURN_IF_ERROR(env->WriteFileAtomic(
      JoinPath(dir, SnapName(epoch)), EncodeSnapshot(initial_snapshot)));
  NEPTUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> wal_file,
      env->NewWritableFile(JoinPath(dir, WalName(epoch)), /*truncate=*/true));
  NEPTUNE_RETURN_IF_ERROR(
      env->WriteFileAtomic(JoinPath(dir, kCurrentFile), SnapName(epoch)));
  // PROJECT is written last: its presence marks a fully-formed store.
  NEPTUNE_RETURN_IF_ERROR(
      env->WriteFileAtomic(JoinPath(dir, kProjectFile), meta));
  return std::unique_ptr<DurableStore>(new DurableStore(
      env, dir, epoch, std::make_unique<LogWriter>(std::move(wal_file)),
      /*wal_bytes=*/0));
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    Env* env, const std::string& dir, RecoveredState* state) {
  NEPTUNE_ASSIGN_OR_RETURN(state->meta,
                           env->ReadFileToString(JoinPath(dir, kProjectFile)));
  NEPTUNE_ASSIGN_OR_RETURN(std::string current,
                           env->ReadFileToString(JoinPath(dir, kCurrentFile)));
  // CURRENT holds "SNAP-<epoch>".
  uint64_t epoch = 0;
  if (std::sscanf(current.c_str(), "SNAP-%" PRIu64, &epoch) != 1) {
    return Status::Corruption("unparsable CURRENT in " + dir);
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::string snap_raw,
                           env->ReadFileToString(JoinPath(dir, current)));
  NEPTUNE_ASSIGN_OR_RETURN(state->snapshot,
                           DecodeSnapshot(snap_raw, JoinPath(dir, current)));
  NEPTUNE_METRIC_COUNT("storage.snapshot.loads", 1);
  NEPTUNE_METRIC_COUNT("storage.snapshot.bytes_loaded", state->snapshot.size());

  const std::string wal_path = JoinPath(dir, WalName(epoch));
  uint64_t wal_bytes = 0;
  if (env->FileExists(wal_path)) {
    NEPTUNE_ASSIGN_OR_RETURN(std::string wal_raw,
                             env->ReadFileToString(wal_path));
    NEPTUNE_ASSIGN_OR_RETURN(LogReadResult log, ReadLog(wal_raw));
    state->wal_records = std::move(log.records);
    state->wal_tail_truncated = log.truncated_tail;
    wal_bytes = log.valid_bytes;
    if (log.truncated_tail) {
      // Drop the torn commit: rewrite the valid prefix atomically.
      NEPTUNE_LOG(Warn) << "truncating torn WAL tail in " << wal_path << " at "
                        << log.valid_bytes;
      NEPTUNE_RETURN_IF_ERROR(env->WriteFileAtomic(
          wal_path, std::string_view(wal_raw).substr(0, log.valid_bytes)));
    }
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> wal_file,
                           env->NewWritableFile(wal_path, /*truncate=*/false));
  return std::unique_ptr<DurableStore>(new DurableStore(
      env, dir, epoch, std::make_unique<LogWriter>(std::move(wal_file)),
      wal_bytes));
}

Status DurableStore::Destroy(Env* env, const std::string& dir) {
  if (!Exists(env, dir)) {
    return Status::NotFound("no graph in " + dir);
  }
  return env->RemoveDirRecursive(dir);
}

Status DurableStore::AppendRecord(std::string_view record, bool sync) {
  NEPTUNE_RETURN_IF_ERROR(wal_->AddRecord(record, sync));
  wal_bytes_ += 8 + record.size();
  return Status::OK();
}

Status DurableStore::Checkpoint(std::string_view snapshot) {
  NEPTUNE_METRIC_TIMED(timer, "storage.checkpoint");
  NEPTUNE_METRIC_COUNT("storage.checkpoint.bytes", snapshot.size());
  const uint64_t next = epoch_ + 1;
  NEPTUNE_RETURN_IF_ERROR(env_->WriteFileAtomic(JoinPath(dir_, SnapName(next)),
                                                EncodeSnapshot(snapshot)));
  NEPTUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> wal_file,
      env_->NewWritableFile(JoinPath(dir_, WalName(next)), /*truncate=*/true));
  // The CURRENT flip is the commit point of the checkpoint.
  NEPTUNE_RETURN_IF_ERROR(
      env_->WriteFileAtomic(JoinPath(dir_, kCurrentFile), SnapName(next)));
  NEPTUNE_RETURN_IF_ERROR(wal_->Close());
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));
  // Best-effort removal of the superseded generation.
  env_->RemoveFile(JoinPath(dir_, SnapName(epoch_)));
  env_->RemoveFile(JoinPath(dir_, WalName(epoch_)));
  epoch_ = next;
  wal_bytes_ = 0;
  return Status::OK();
}

}  // namespace neptune

#include "storage/durable_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace neptune {

namespace {

constexpr char kProjectFile[] = "PROJECT";
constexpr char kCurrentFile[] = "CURRENT";
constexpr char kReplFile[] = "REPL";
constexpr char kSnapMagic[] = "NEPSNAP1";  // 8 bytes

// REPL file: "term=<n> role=follower|primary". Absent file = primary
// at term 0 (a standalone store never writes one).
ReplRole ReadReplRole(Env* env, const std::string& dir) {
  ReplRole role;
  auto raw = env->ReadFileToString(JoinPath(dir, kReplFile));
  if (!raw.ok()) return role;
  char kind[16] = {0};
  if (std::sscanf(raw->c_str(), "term=%" PRIu64 " role=%15s", &role.term,
                  kind) == 2) {
    role.follower = std::strcmp(kind, "follower") == 0;
  }
  return role;
}

Status WriteReplRole(Env* env, const std::string& dir, const ReplRole& role) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "term=%" PRIu64 " role=%s", role.term,
                role.follower ? "follower" : "primary");
  return env->WriteFileAtomic(JoinPath(dir, kReplFile), buf);
}

// SNAP file layout: magic(8) | masked_crc32c(blob)(4) | fixed64 len | blob.
std::string EncodeSnapshot(std::string_view blob) {
  std::string out;
  out.reserve(20 + blob.size());
  out.append(kSnapMagic, 8);
  PutFixed32(&out, crc32c::Mask(crc32c::Value(blob)));
  PutFixed64(&out, blob.size());
  out.append(blob);
  return out;
}

Result<std::string> DecodeSnapshot(std::string_view data,
                                   const std::string& path) {
  std::string_view in = data;
  if (in.size() < 20 || in.substr(0, 8) != std::string_view(kSnapMagic, 8)) {
    return Status::Corruption("bad snapshot magic in " + path);
  }
  in.remove_prefix(8);
  uint32_t masked_crc = 0;
  uint64_t len = 0;
  GetFixed32(&in, &masked_crc);
  GetFixed64(&in, &len);
  if (in.size() != len) {
    return Status::Corruption("snapshot length mismatch in " + path);
  }
  if (crc32c::Value(in) != crc32c::Unmask(masked_crc)) {
    return Status::Corruption("snapshot checksum mismatch in " + path);
  }
  return std::string(in);
}

// Epoch of a "SNAP-<n>"/"WAL-<n>" file name; 0 when `name` is neither.
uint64_t ParseEpoch(const std::string& name, const char* prefix) {
  const size_t prefix_len = std::strlen(prefix);
  if (name.compare(0, prefix_len, prefix) != 0) return 0;
  uint64_t epoch = 0;
  for (size_t i = prefix_len; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    epoch = epoch * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return name.size() > prefix_len ? epoch : 0;
}

bool IsTmpName(const std::string& name) {
  return name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = "recovery: snapshot_epoch=" + std::to_string(snapshot_epoch)
      + " wal_epoch=" + std::to_string(wal_epoch)
      + " wal_files_replayed=" + std::to_string(wal_files_replayed)
      + " records_replayed=" + std::to_string(records_replayed)
      + " bytes_truncated=" + std::to_string(bytes_truncated);
  out += wal_tail_truncated ? " wal_tail_truncated=true"
                            : " wal_tail_truncated=false";
  out += mid_log_corruption ? " mid_log_corruption=true"
                            : " mid_log_corruption=false";
  out += snapshot_fallback ? " snapshot_fallback=true"
                           : " snapshot_fallback=false";
  out += current_rewritten ? " current_rewritten=true"
                           : " current_rewritten=false";
  out += " orphans_removed=" + std::to_string(orphans_removed);
  return out;
}

std::string RecoveryReport::ToJson() const {
  auto b = [](bool v) { return v ? "true" : "false"; };
  std::string out = "{";
  out += "\"snapshot_epoch\": " + std::to_string(snapshot_epoch);
  out += ", \"wal_epoch\": " + std::to_string(wal_epoch);
  out += ", \"wal_files_replayed\": " + std::to_string(wal_files_replayed);
  out += ", \"records_replayed\": " + std::to_string(records_replayed);
  out += ", \"bytes_truncated\": " + std::to_string(bytes_truncated);
  out += std::string(", \"wal_tail_truncated\": ") + b(wal_tail_truncated);
  out += std::string(", \"mid_log_corruption\": ") + b(mid_log_corruption);
  out += std::string(", \"snapshot_fallback\": ") + b(snapshot_fallback);
  out += std::string(", \"current_rewritten\": ") + b(current_rewritten);
  out += ", \"orphans_removed\": " + std::to_string(orphans_removed);
  out += std::string(", \"clean\": ") + b(Clean());
  out += "}";
  return out;
}

DurableStore::~DurableStore() {
  if (wal_ != nullptr) wal_->Close();
}

std::string DurableStore::SnapName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "SNAP-%06" PRIu64, epoch);
  return buf;
}

std::string DurableStore::WalName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "WAL-%06" PRIu64, epoch);
  return buf;
}

bool DurableStore::Exists(Env* env, const std::string& dir) {
  return env->FileExists(JoinPath(dir, kProjectFile));
}

Result<std::string> DurableStore::ReadMeta(Env* env, const std::string& dir) {
  return env->ReadFileToString(JoinPath(dir, kProjectFile));
}

Result<std::unique_ptr<DurableStore>> DurableStore::Create(
    Env* env, const std::string& dir, std::string_view meta,
    std::string_view initial_snapshot, uint32_t dir_mode) {
  if (Exists(env, dir)) {
    return Status::AlreadyExists("a graph already exists in " + dir);
  }
  NEPTUNE_RETURN_IF_ERROR(env->CreateDir(dir));
  if (dir_mode != 0) {
    NEPTUNE_RETURN_IF_ERROR(env->SetPermissions(dir, dir_mode));
  }
  const uint64_t epoch = 1;
  NEPTUNE_RETURN_IF_ERROR(env->WriteFileAtomic(
      JoinPath(dir, SnapName(epoch)), EncodeSnapshot(initial_snapshot)));
  NEPTUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> wal_file,
      env->NewWritableFile(JoinPath(dir, WalName(epoch)), /*truncate=*/true));
  NEPTUNE_RETURN_IF_ERROR(
      env->WriteFileAtomic(JoinPath(dir, kCurrentFile), SnapName(epoch)));
  // PROJECT is written last: its presence marks a fully-formed store.
  NEPTUNE_RETURN_IF_ERROR(
      env->WriteFileAtomic(JoinPath(dir, kProjectFile), meta));
  return std::unique_ptr<DurableStore>(new DurableStore(
      env, dir, epoch, std::make_unique<LogWriter>(std::move(wal_file)),
      /*wal_bytes=*/0));
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    Env* env, const std::string& dir, RecoveredState* state,
    uint32_t keep_wal_generations) {
  NEPTUNE_ASSIGN_OR_RETURN(state->meta,
                           env->ReadFileToString(JoinPath(dir, kProjectFile)));
  RecoveryReport& report = state->report;

  // Inventory the directory: which generations are actually on disk?
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<std::string> children,
                           env->GetChildren(dir));
  std::set<uint64_t> snap_epochs;
  std::set<uint64_t> wal_epochs;
  std::vector<std::string> tmp_names;
  for (const std::string& name : children) {
    if (IsTmpName(name)) {
      tmp_names.push_back(name);
      continue;
    }
    if (uint64_t e = ParseEpoch(name, "SNAP-")) snap_epochs.insert(e);
    if (uint64_t e = ParseEpoch(name, "WAL-")) wal_epochs.insert(e);
  }

  // CURRENT holds "SNAP-<epoch>". A missing or unparsable CURRENT is
  // survivable as long as some snapshot is: fall back to the newest one.
  uint64_t target = 0;  // the committed generation
  bool current_ok = false;
  if (auto current = env->ReadFileToString(JoinPath(dir, kCurrentFile));
      current.ok()) {
    current_ok = std::sscanf(current->c_str(), "SNAP-%" PRIu64, &target) == 1;
  }
  if (!current_ok) {
    if (snap_epochs.empty()) {
      return Status::Corruption("no CURRENT and no snapshot in " + dir);
    }
    target = *snap_epochs.rbegin();
    NEPTUNE_LOG(Warn) << "event=current_missing dir=" << dir
                      << " assumed_epoch=" << target;
  }

  // Load the newest decodable snapshot at or below the committed
  // generation. Epochs above `target` are uncommitted checkpoint debris
  // and must not be trusted.
  uint64_t snap_epoch = 0;
  Status first_snap_error;
  std::vector<uint64_t> candidates;
  candidates.push_back(target);
  for (auto it = snap_epochs.rbegin(); it != snap_epochs.rend(); ++it) {
    if (*it < target) candidates.push_back(*it);
  }
  for (uint64_t e : candidates) {
    const std::string snap_path = JoinPath(dir, SnapName(e));
    auto snap_raw = env->ReadFileToString(snap_path);
    Result<std::string> decoded =
        snap_raw.ok() ? DecodeSnapshot(*snap_raw, snap_path)
                      : Result<std::string>(snap_raw.status());
    if (decoded.ok()) {
      state->snapshot = std::move(*decoded);
      snap_epoch = e;
      break;
    }
    if (first_snap_error.ok()) first_snap_error = decoded.status();
    NEPTUNE_LOG(Warn) << "event=snapshot_unusable dir=" << dir << " epoch="
                      << e << " code="
                      << StatusCodeToString(decoded.status().code())
                      << " detail=\"" << decoded.status().message() << "\"";
  }
  if (snap_epoch == 0) {
    return Status::Corruption("no usable snapshot in " + dir + " (" +
                              std::string(first_snap_error.message()) + ")");
  }
  report.snapshot_epoch = snap_epoch;
  report.wal_epoch = target;
  report.snapshot_fallback = snap_epoch != target || !current_ok;
  NEPTUNE_METRIC_COUNT("storage.snapshot.loads", 1);
  NEPTUNE_METRIC_COUNT("storage.snapshot.bytes_loaded", state->snapshot.size());

  // Replay every WAL from the snapshot's generation up to the committed
  // one. In the common case that is just WAL-<target>; after a snapshot
  // fallback the older logs bridge the gap, since checkpoint `e+1`
  // folded exactly SNAP-<e> + WAL-<e> into its snapshot.
  uint64_t live_wal_bytes = 0;
  for (uint64_t e = snap_epoch; e <= target; ++e) {
    const std::string wal_path = JoinPath(dir, WalName(e));
    if (!env->FileExists(wal_path)) continue;
    NEPTUNE_ASSIGN_OR_RETURN(std::string wal_raw,
                             env->ReadFileToString(wal_path));
    NEPTUNE_ASSIGN_OR_RETURN(LogReadResult log, ReadLog(wal_raw));
    report.wal_files_replayed++;
    report.records_replayed += log.records.size();
    report.bytes_truncated += log.dropped_bytes;
    report.mid_log_corruption |= log.mid_log_corruption;
    for (std::string& record : log.records) {
      state->wal_records.push_back(std::move(record));
    }
    if (e == target) {
      report.wal_tail_truncated = log.truncated_tail;
      live_wal_bytes = log.valid_bytes;
      if (log.truncated_tail) {
        // Drop the torn/corrupt suffix on disk so new commits append
        // right after the last good record.
        NEPTUNE_LOG(Warn) << "event=wal_tail_truncated path=" << wal_path
                          << " valid_bytes=" << log.valid_bytes
                          << " dropped_bytes=" << log.dropped_bytes;
        NEPTUNE_RETURN_IF_ERROR(env->TruncateFile(wal_path, log.valid_bytes));
      }
    }
  }
  state->wal_tail_truncated = report.wal_tail_truncated;

  if (report.snapshot_fallback) {
    // Leave the directory untouched: a second recovery must see the
    // same inputs and reach the same state (and an operator may want
    // the corrupt snapshot for forensics). Heal CURRENT only when it
    // points nowhere and the newest snapshot is the one we used.
    if (!current_ok && snap_epoch == target) {
      if (env->WriteFileAtomic(JoinPath(dir, kCurrentFile), SnapName(target))
              .ok()) {
        report.current_rewritten = true;
      }
    }
  } else {
    // Healthy recovery: sweep debris — tmp files from interrupted
    // atomic writes and generations other than the committed one.
    for (const std::string& name : tmp_names) {
      if (env->RemoveFile(JoinPath(dir, name)).ok()) report.orphans_removed++;
    }
    for (uint64_t e : snap_epochs) {
      if (e != target && env->RemoveFile(JoinPath(dir, SnapName(e))).ok()) {
        report.orphans_removed++;
      }
    }
    for (uint64_t e : wal_epochs) {
      // WAL generations within the retention window are replication
      // tail history, not debris; generations above the committed one
      // are uncommitted checkpoint debris regardless of retention.
      const bool retained =
          e < target && target - e <= keep_wal_generations;
      if (e != target && !retained &&
          env->RemoveFile(JoinPath(dir, WalName(e))).ok()) {
        report.orphans_removed++;
      }
    }
  }

  NEPTUNE_METRIC_COUNT("wal.recovery.count", 1);
  NEPTUNE_METRIC_COUNT("wal.recovery.records_replayed",
                       report.records_replayed);
  NEPTUNE_METRIC_COUNT("wal.recovery.bytes_truncated", report.bytes_truncated);
  if (report.wal_tail_truncated) {
    NEPTUNE_METRIC_COUNT("wal.recovery.tail_truncated", 1);
  }
  if (report.mid_log_corruption) {
    NEPTUNE_METRIC_COUNT("wal.recovery.mid_log_corruption", 1);
  }
  if (report.snapshot_fallback) {
    NEPTUNE_METRIC_COUNT("wal.recovery.snapshot_fallback", 1);
  }
  NEPTUNE_METRIC_COUNT("wal.recovery.orphans_removed", report.orphans_removed);

  const std::string wal_path = JoinPath(dir, WalName(target));
  NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> wal_file,
                           env->NewWritableFile(wal_path, /*truncate=*/false));
  std::unique_ptr<DurableStore> store(new DurableStore(
      env, dir, target, std::make_unique<LogWriter>(std::move(wal_file)),
      live_wal_bytes));
  store->repl_ = ReadReplRole(env, dir);
  store->keep_wal_generations_ = keep_wal_generations;
  return store;
}

Result<std::unique_ptr<DurableStore>> DurableStore::CreateForReplica(
    Env* env, const std::string& dir, std::string_view meta,
    std::string_view snapshot, uint64_t epoch, uint64_t term) {
  // A resync replaces whatever divergent or stale store was here.
  if (env->FileExists(dir)) {
    NEPTUNE_RETURN_IF_ERROR(env->RemoveDirRecursive(dir));
  }
  NEPTUNE_RETURN_IF_ERROR(env->CreateDir(dir));
  NEPTUNE_RETURN_IF_ERROR(env->WriteFileAtomic(
      JoinPath(dir, SnapName(epoch)), EncodeSnapshot(snapshot)));
  NEPTUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> wal_file,
      env->NewWritableFile(JoinPath(dir, WalName(epoch)), /*truncate=*/true));
  NEPTUNE_RETURN_IF_ERROR(
      env->WriteFileAtomic(JoinPath(dir, kCurrentFile), SnapName(epoch)));
  ReplRole role{term, /*follower=*/true};
  NEPTUNE_RETURN_IF_ERROR(WriteReplRole(env, dir, role));
  NEPTUNE_RETURN_IF_ERROR(
      env->WriteFileAtomic(JoinPath(dir, kProjectFile), meta));
  std::unique_ptr<DurableStore> store(new DurableStore(
      env, dir, epoch, std::make_unique<LogWriter>(std::move(wal_file)),
      /*wal_bytes=*/0));
  store->repl_ = role;
  return store;
}

Status DurableStore::Destroy(Env* env, const std::string& dir) {
  if (!Exists(env, dir)) {
    return Status::NotFound("no graph in " + dir);
  }
  return env->RemoveDirRecursive(dir);
}

Status DurableStore::AppendCommon(uint64_t framed_size,
                                  const std::function<Status()>& append) {
  if (degraded_) {
    Status repaired = RepairWal();
    if (!repaired.ok()) {
      NEPTUNE_METRIC_COUNT("storage.wal.readonly_rejects", 1);
      return Status::ReadOnly("WAL unwritable, store is read-only (" +
                              std::string(repaired.message()) + ")");
    }
  }
  Status status = append();
  if (!status.ok()) {
    // The failed commit may have left half-written or unsynced bytes
    // past the last good record; stop trusting the writer until a
    // repair truncates back to wal_bytes_. The caller still sees the
    // original failure, not kReadOnly — only *later* commits do, and
    // only if the repair keeps failing too.
    degraded_ = true;
    NEPTUNE_METRIC_COUNT("wal.recovery.degraded_entered", 1);
    return status;
  }
  wal_bytes_ += framed_size;
  return status;
}

Status DurableStore::AppendRecord(std::string_view record, bool sync) {
  NEPTUNE_TRACE_SPAN(span, "storage.wal.append");
  if (span.active()) {
    span.Annotate("bytes=" + std::to_string(record.size()) +
                  (sync ? " sync=1" : " sync=0"));
  }
  return AppendCommon(8 + record.size(),
                      [&] { return wal_->AddRecord(record, sync); });
}

Status DurableStore::AppendRawFrames(std::string_view frames, bool sync) {
  NEPTUNE_TRACE_SPAN(span, "storage.wal.append_raw");
  if (span.active()) {
    span.Annotate("bytes=" + std::to_string(frames.size()) +
                  (sync ? " sync=1" : " sync=0"));
  }
  return AppendCommon(frames.size(),
                      [&] { return wal_->AddRawFrames(frames, sync); });
}

Result<WalChunk> DurableStore::ReadWalRange(uint64_t epoch, uint64_t offset,
                                            uint64_t max_bytes) {
  if (epoch > epoch_) {
    return Status::NotFound("WAL generation " + std::to_string(epoch) +
                            " is ahead of " + dir_);
  }
  const std::string wal_path = JoinPath(dir_, WalName(epoch));
  WalChunk chunk;
  if (epoch == epoch_) {
    // Only bytes below wal_bytes_ are committed; a failed append may
    // have left garbage past it that must never ship.
    chunk.epoch_bytes = wal_bytes_;
    chunk.epoch_complete = false;
  } else {
    if (!env_->FileExists(wal_path)) {
      return Status::NotFound("WAL generation " + std::to_string(epoch) +
                              " no longer retained in " + dir_);
    }
    NEPTUNE_ASSIGN_OR_RETURN(chunk.epoch_bytes, env_->GetFileSize(wal_path));
    chunk.epoch_complete = true;
  }
  if (offset > chunk.epoch_bytes) {
    return Status::FailedPrecondition(
        "WAL offset " + std::to_string(offset) + " past committed end " +
        std::to_string(chunk.epoch_bytes) + " in " + dir_);
  }
  if (offset < chunk.epoch_bytes) {
    NEPTUNE_ASSIGN_OR_RETURN(std::string raw,
                             env_->ReadFileToString(wal_path));
    const uint64_t end =
        std::min<uint64_t>(chunk.epoch_bytes,
                           std::min<uint64_t>(raw.size(), offset + max_bytes));
    if (offset < end) chunk.bytes = raw.substr(offset, end - offset);
  }
  return chunk;
}

Result<std::string> DurableStore::ReadSnapshotBlob() {
  const std::string snap_path = JoinPath(dir_, SnapName(epoch_));
  NEPTUNE_ASSIGN_OR_RETURN(std::string raw, env_->ReadFileToString(snap_path));
  return DecodeSnapshot(raw, snap_path);
}

Status DurableStore::SetReplRole(const ReplRole& role) {
  NEPTUNE_RETURN_IF_ERROR(WriteReplRole(env_, dir_, role));
  repl_ = role;
  return Status::OK();
}

Status DurableStore::RepairWal() {
  if (wal_ != nullptr) {
    wal_->Close();  // Best effort: the handle is already suspect.
    wal_ = nullptr;
  }
  const std::string wal_path = JoinPath(dir_, WalName(epoch_));
  if (env_->FileExists(wal_path)) {
    NEPTUNE_ASSIGN_OR_RETURN(uint64_t size, env_->GetFileSize(wal_path));
    if (size > wal_bytes_) {
      NEPTUNE_RETURN_IF_ERROR(env_->TruncateFile(wal_path, wal_bytes_));
    }
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> wal_file,
                           env_->NewWritableFile(wal_path, /*truncate=*/false));
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));
  degraded_ = false;
  NEPTUNE_METRIC_COUNT("wal.recovery.repaired", 1);
  NEPTUNE_LOG(Warn) << "event=wal_repaired path=" << wal_path
                    << " truncated_to_bytes=" << wal_bytes_;
  return Status::OK();
}

Status DurableStore::Checkpoint(std::string_view snapshot) {
  NEPTUNE_TRACE_SPAN(span, "storage.checkpoint");
  if (span.active()) {
    span.Annotate("bytes=" + std::to_string(snapshot.size()));
  }
  NEPTUNE_METRIC_TIMED(timer, "storage.checkpoint");
  NEPTUNE_METRIC_COUNT("storage.checkpoint.bytes", snapshot.size());
  const uint64_t next = epoch_ + 1;
  const std::string next_snap = JoinPath(dir_, SnapName(next));
  const std::string next_wal = JoinPath(dir_, WalName(next));
  NEPTUNE_RETURN_IF_ERROR(
      env_->WriteFileAtomic(next_snap, EncodeSnapshot(snapshot)));
  auto wal_file = env_->NewWritableFile(next_wal, /*truncate=*/true);
  if (!wal_file.ok()) {
    env_->RemoveFile(next_snap);
    return wal_file.status();
  }
  // The CURRENT flip is the commit point of the checkpoint.
  Status flip = env_->WriteFileAtomic(JoinPath(dir_, kCurrentFile),
                                      SnapName(next));
  if (!flip.ok()) {
    // The next generation never became live: remove what was staged so
    // a later crash-recovery can't mistake it for anything.
    (*wal_file)->Close();
    env_->RemoveFile(next_wal);
    env_->RemoveFile(next_snap);
    NEPTUNE_METRIC_COUNT("storage.checkpoint.aborted", 1);
    return flip;
  }
  if (wal_ != nullptr) wal_->Close();
  wal_ = std::make_unique<LogWriter>(*std::move(wal_file));
  degraded_ = false;  // A fresh, empty WAL is trustworthy again.
  // Best-effort removal of the superseded generation. The last
  // keep_wal_generations_ WALs are retained so followers can tail
  // across the checkpoint instead of re-snapshotting.
  env_->RemoveFile(JoinPath(dir_, SnapName(epoch_)));
  if (keep_wal_generations_ == 0) {
    env_->RemoveFile(JoinPath(dir_, WalName(epoch_)));
  } else if (epoch_ > keep_wal_generations_) {
    env_->RemoveFile(JoinPath(dir_, WalName(epoch_ - keep_wal_generations_)));
  }
  epoch_ = next;
  wal_bytes_ = 0;
  return Status::OK();
}

}  // namespace neptune

// Env: the filesystem abstraction under the HAM's durable storage.
// A production deployment uses PosixEnv; tests that inject faults or
// count syncs wrap it (see tests/storage). The interface is the small
// slice of a LevelDB/RocksDB-style Env that Neptune actually needs.

#ifndef NEPTUNE_STORAGE_ENV_H_
#define NEPTUNE_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace neptune {

// A file opened for appending. Writes are buffered by the OS; Sync()
// makes them durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // Shared process-wide POSIX environment.
  static Env* Default();

  // Opens `path` for writing. If `truncate` the file is emptied,
  // otherwise writes append to existing contents.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  // Writes `data` to `path` atomically (temp file + fsync + rename) so
  // a crash never leaves a half-written file visible under `path`.
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view data) = 0;

  // Truncates (or extends with zeroes) `path` to exactly `size` bytes.
  // Used by recovery to chop a torn record off the WAL tail.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status CreateDir(const std::string& path) = 0;        // mkdir -p
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  // Names (not paths) of entries directly inside `dir`.
  virtual Result<std::vector<std::string>> GetChildren(
      const std::string& dir) = 0;
  // chmod-style permission bits; used to honour HAM Protections.
  virtual Status SetPermissions(const std::string& path, uint32_t mode) = 0;
};

// Joins a directory and a file name with exactly one separator.
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace neptune

#endif  // NEPTUNE_STORAGE_ENV_H_

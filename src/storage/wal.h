// Write-ahead log. Each committed HAM transaction is serialized into
// one record and appended here before it is applied to the in-memory
// graph; recovery replays the log on top of the latest snapshot.
//
// On-disk frame (per record):
//     masked_crc32c : fixed32   over the payload
//     length        : fixed32   payload byte count
//     payload       : length bytes
//
// Any bad record (short header, short payload, or CRC mismatch)
// terminates reading: the reader keeps every record up to the first bad
// one and reports how many bytes they cover so the caller can truncate
// the tail. Damage before the last record additionally sets
// `mid_log_corruption` — it cannot be explained by a single torn append,
// so callers should surface it loudly — but recovery still salvages the
// valid prefix instead of failing outright.

#ifndef NEPTUNE_STORAGE_WAL_H_
#define NEPTUNE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"

namespace neptune {

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Appends one framed record. If `sync`, the record is durable when
  // this returns.
  Status AddRecord(std::string_view payload, bool sync);

  // Appends bytes that are already a sequence of valid frames (WAL
  // replication ships raw frame ranges so the receiver can re-verify
  // the CRCs with ReadLog before trusting them). The caller must have
  // validated `frames`; nothing is re-framed here.
  Status AddRawFrames(std::string_view frames, bool sync);

  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

// Parses a fully-read log file image.
struct LogReadResult {
  std::vector<std::string> records;
  // Offset of the first byte not covered by a valid record. Equal to
  // the file size when the log is clean; smaller when a torn tail was
  // dropped.
  uint64_t valid_bytes = 0;
  // True when trailing bytes were dropped (crash mid-append).
  bool truncated_tail = false;
  // Bytes between valid_bytes and the end of the file (0 for a clean log).
  uint64_t dropped_bytes = 0;
  // True when the first bad record was not the last one in the file —
  // i.e. data after it parsed as further frames, which a torn append
  // cannot produce. The prefix is still returned.
  bool mid_log_corruption = false;
};

// Decodes the longest valid prefix of `data`. Never fails: damage of
// any shape truncates at the first bad record and is reported through
// the result flags. (The Result wrapper is kept for call-site symmetry.)
Result<LogReadResult> ReadLog(std::string_view data);

}  // namespace neptune

#endif  // NEPTUNE_STORAGE_WAL_H_

// Write-ahead log. Each committed HAM transaction is serialized into
// one record and appended here before it is applied to the in-memory
// graph; recovery replays the log on top of the latest snapshot.
//
// On-disk frame (per record):
//     masked_crc32c : fixed32   over the payload
//     length        : fixed32   payload byte count
//     payload       : length bytes
//
// A torn write at the tail (short header, short payload, or CRC
// mismatch) terminates reading: the reader reports how many bytes were
// consumed by valid records so the caller can truncate the tail. A CRC
// mismatch *before* the last record is reported as Corruption.

#ifndef NEPTUNE_STORAGE_WAL_H_
#define NEPTUNE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"

namespace neptune {

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Appends one framed record. If `sync`, the record is durable when
  // this returns.
  Status AddRecord(std::string_view payload, bool sync);

  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

// Parses a fully-read log file image.
struct LogReadResult {
  std::vector<std::string> records;
  // Offset of the first byte not covered by a valid record. Equal to
  // the file size when the log is clean; smaller when a torn tail was
  // dropped.
  uint64_t valid_bytes = 0;
  // True when trailing bytes were dropped (crash mid-append).
  bool truncated_tail = false;
};

// Decodes all records in `data`. Returns Corruption only for damage
// that cannot be explained as a torn tail.
Result<LogReadResult> ReadLog(std::string_view data);

}  // namespace neptune

#endif  // NEPTUNE_STORAGE_WAL_H_

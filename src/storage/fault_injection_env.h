// FaultInjectionEnv: an Env decorator that injects storage faults on a
// seedable schedule so recovery paths can be exercised deterministically.
//
// Three classes of fault are supported:
//   * fail-the-Nth-op: the append/sync/rename/truncate/atomic-write whose
//     0-based lifetime index reaches an armed threshold fails with an
//     injected IOError (and keeps failing until Heal()).
//   * torn writes: a power cut keeps a seeded random prefix of the bytes
//     written since the last fsync, so a WAL record can be cut anywhere —
//     mid-header, mid-payload, or exactly on a record boundary.
//   * power cut: at the Nth fsync (or on demand) the "machine" loses
//     power. That fsync fails, every byte not made durable by an earlier
//     fsync is dropped (modulo the torn prefix), and every subsequent Env
//     call fails with kUnavailable until Restart() — which models the
//     machine rebooting with whatever survived on disk.
//
// Durability is modeled logically: Sync() records which bytes would have
// survived instead of calling fsync(2), so a crash matrix with tens of
// thousands of sync points runs in seconds. Data still reaches the real
// filesystem through the wrapped Env on every Append. WriteFileAtomic is
// implemented on top of this Env's own primitives (tmp write + sync +
// rename) so checkpoint/CURRENT flips are schedulable and tearable too.

#ifndef NEPTUNE_STORAGE_FAULT_INJECTION_ENV_H_
#define NEPTUNE_STORAGE_FAULT_INJECTION_ENV_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "storage/env.h"

namespace neptune {

class FaultInjectionEnv : public Env {
 public:
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  explicit FaultInjectionEnv(Env* base, uint64_t seed = 1);

  // ------------------------------------------------------- observation
  uint64_t appends() const { return appends_.load(); }
  uint64_t syncs() const { return syncs_.load(); }
  uint64_t renames() const { return renames_.load(); }
  uint64_t truncates() const { return truncates_.load(); }
  uint64_t atomic_writes() const { return atomic_writes_.load(); }
  bool down() const { return down_.load(); }

  // ------------------------------------------------------ fault arming
  // The op whose 0-based lifetime index is >= n fails (until Heal()).
  void FailAppendsAfter(uint64_t n) { fail_appends_after_ = n; }
  void FailSyncsAfter(uint64_t n) { fail_syncs_after_ = n; }
  void FailRenamesAfter(uint64_t n) { fail_renames_after_ = n; }
  void FailTruncatesAfter(uint64_t n) { fail_truncates_after_ = n; }
  void FailAtomicWritesAfter(uint64_t n) { fail_atomic_writes_after_ = n; }

  // Powers the machine off at exactly the Nth (0-based) fsync.
  void PowerCutAtSync(uint64_t n) { power_cut_at_sync_ = n; }
  void PowerCutNow();

  // Disarms every schedule. Does not revive a machine that lost power.
  void Heal();

  // After a power cut: the machine comes back up and whatever the cut
  // left on disk is now fully durable. Counters keep running.
  void Restart();

  // ------------------------------------------------------ Env interface
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursive(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override;
  Status SetPermissions(const std::string& path, uint32_t mode) override;

 private:
  class FaultFile;

  // Per-open-file durability tracking. `written` is what the OS has,
  // `durable` is what an honest fsync has pinned down.
  struct FileState {
    uint64_t written = 0;
    uint64_t durable = 0;
  };

  Status DownStatus() const {
    return Status::Unavailable("simulated power loss: machine is down");
  }

  // Truncates every tracked file to its durable size plus a seeded
  // random torn prefix of the lost tail. Caller holds mu_.
  void ApplyPowerCutLocked();

  Env* const base_;

  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> renames_{0};
  std::atomic<uint64_t> truncates_{0};
  std::atomic<uint64_t> atomic_writes_{0};

  std::atomic<uint64_t> fail_appends_after_{kNever};
  std::atomic<uint64_t> fail_syncs_after_{kNever};
  std::atomic<uint64_t> fail_renames_after_{kNever};
  std::atomic<uint64_t> fail_truncates_after_{kNever};
  std::atomic<uint64_t> fail_atomic_writes_after_{kNever};
  std::atomic<uint64_t> power_cut_at_sync_{kNever};

  std::atomic<bool> down_{false};

  std::mutex mu_;
  Random rng_;                             // guarded by mu_
  std::map<std::string, FileState> files_;  // guarded by mu_
};

}  // namespace neptune

#endif  // NEPTUNE_STORAGE_FAULT_INJECTION_ENV_H_

#include "storage/fault_injection_env.h"

#include <algorithm>
#include <utility>

namespace neptune {

// Forwards writes to the wrapped file while reporting sizes back to the
// env, so a power cut knows how much of this file was never fsynced.
class FaultInjectionEnv::FaultFile : public WritableFile {
 public:
  FaultFile(FaultInjectionEnv* env, std::string path,
            std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    if (env_->down()) return env_->DownStatus();
    const uint64_t n = env_->appends_.fetch_add(1);
    if (n >= env_->fail_appends_after_.load()) {
      return Status::IOError("injected append failure for " + path_);
    }
    NEPTUNE_RETURN_IF_ERROR(base_->Append(data));
    std::lock_guard<std::mutex> lock(env_->mu_);
    env_->files_[path_].written += data.size();
    return Status::OK();
  }

  Status Sync() override {
    if (env_->down()) return env_->DownStatus();
    const uint64_t n = env_->syncs_.fetch_add(1);
    if (n == env_->power_cut_at_sync_.load()) {
      // The power dies while this fsync is in flight: it never completes,
      // and everything not already durable is at the disk's mercy.
      env_->PowerCutNow();
      return env_->DownStatus();
    }
    if (n >= env_->fail_syncs_after_.load()) {
      return Status::IOError("injected fsync failure for " + path_);
    }
    // Durability is modeled, not bought: no fsync(2) — the bytes already
    // reached the filesystem via Append, which is all tests observe.
    std::lock_guard<std::mutex> lock(env_->mu_);
    FileState& fs = env_->files_[path_];
    fs.durable = fs.written;
    return Status::OK();
  }

  Status Close() override {
    Status status = base_->Close();
    if (env_->down()) return env_->DownStatus();
    // A cleanly closed file is out of the blast radius: the stores close
    // files only after syncing what they care about, and modeling
    // close-then-crash of cold files adds nothing to the matrix.
    std::lock_guard<std::mutex> lock(env_->mu_);
    env_->files_.erase(path_);
    return status;
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed) {}

void FaultInjectionEnv::PowerCutNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_.exchange(true)) return;
  ApplyPowerCutLocked();
}

void FaultInjectionEnv::Heal() {
  fail_appends_after_ = kNever;
  fail_syncs_after_ = kNever;
  fail_renames_after_ = kNever;
  fail_truncates_after_ = kNever;
  fail_atomic_writes_after_ = kNever;
  power_cut_at_sync_ = kNever;
}

void FaultInjectionEnv::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  down_ = false;
}

void FaultInjectionEnv::ApplyPowerCutLocked() {
  for (const auto& [path, fs] : files_) {
    if (fs.written <= fs.durable) continue;
    const uint64_t lost = fs.written - fs.durable;
    // The disk may have persisted any prefix of the unsynced tail — this
    // is what makes torn records: keep [0, lost] extra bytes.
    const uint64_t kept = fs.durable + rng_.Uniform(lost + 1);
    base_->TruncateFile(path, kept);  // best effort; the machine is dying
  }
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (down()) return DownStatus();
  NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           base_->NewWritableFile(path, truncate));
  uint64_t size = 0;
  if (!truncate) {
    auto existing = base_->GetFileSize(path);
    if (existing.ok()) size = *existing;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Pre-existing contents were someone else's responsibility to sync;
    // treat them as durable so a cut only tears what this handle wrote.
    files_[path] = FileState{size, size};
  }
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, path, std::move(file)));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  if (down()) return DownStatus();
  return base_->ReadFileToString(path);
}

Status FaultInjectionEnv::WriteFileAtomic(const std::string& path,
                                          std::string_view data) {
  if (down()) return DownStatus();
  const uint64_t n = atomic_writes_.fetch_add(1);
  if (n >= fail_atomic_writes_after_.load()) {
    return Status::IOError("injected atomic-write failure for " + path);
  }
  // Built from this Env's own primitives so the tmp write, its fsync and
  // the final rename are all individually schedulable and tearable.
  const std::string tmp = path + ".tmp";
  Status status = [&] {
    NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             NewWritableFile(tmp, /*truncate=*/true));
    NEPTUNE_RETURN_IF_ERROR(file->Append(data));
    NEPTUNE_RETURN_IF_ERROR(file->Sync());
    return file->Close();
  }();
  if (status.ok()) status = RenameFile(tmp, path);
  // A mere failure cleans up its tmp like PosixEnv does; a power cut is a
  // crash, so the orphan stays for recovery to deal with.
  if (!status.ok() && !down()) base_->RemoveFile(tmp);
  return status;
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  if (down()) return DownStatus();
  const uint64_t n = truncates_.fetch_add(1);
  if (n >= fail_truncates_after_.load()) {
    return Status::IOError("injected truncate failure for " + path);
  }
  NEPTUNE_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.written = std::min(it->second.written, size);
    it->second.durable = std::min(it->second.durable, size);
  }
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  if (down()) return DownStatus();
  return base_->GetFileSize(path);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  if (down()) return DownStatus();
  return base_->CreateDir(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (down()) return DownStatus();
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::RemoveDirRecursive(const std::string& path) {
  if (down()) return DownStatus();
  return base_->RemoveDirRecursive(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (down()) return DownStatus();
  const uint64_t n = renames_.fetch_add(1);
  if (n >= fail_renames_after_.load()) {
    return Status::IOError("injected rename failure for " + from);
  }
  NEPTUNE_RETURN_IF_ERROR(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectionEnv::GetChildren(
    const std::string& dir) {
  if (down()) return DownStatus();
  return base_->GetChildren(dir);
}

Status FaultInjectionEnv::SetPermissions(const std::string& path,
                                         uint32_t mode) {
  if (down()) return DownStatus();
  return base_->SetPermissions(path, mode);
}

}  // namespace neptune

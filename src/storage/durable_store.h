// DurableStore: the on-disk layout of one HAM graph database.
//
// A graph lives in its own directory (exactly as the 1986 HAM's
// createGraph took a Directory operand):
//
//   PROJECT        immutable metadata (project id, creation time,
//                  protections) written once at create time
//   CURRENT        name of the live snapshot, updated atomically
//   SNAP-<epoch>   full serialized graph state at checkpoint <epoch>
//   WAL-<epoch>    redo records committed after that checkpoint
//
// Commit path: serialize the transaction, AppendRecord() (optionally
// fsync), then apply in memory. Recovery: load SNAP, replay WAL; a
// torn WAL tail (crash mid-commit) is detected by CRC and truncated,
// which is precisely "complete recovery from any aborted transaction".
// Checkpoint(): write SNAP-<epoch+1> + empty WAL, flip CURRENT, delete
// the old generation.

#ifndef NEPTUNE_STORAGE_DURABLE_STORE_H_
#define NEPTUNE_STORAGE_DURABLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace neptune {

// Structured account of what recovery had to do. Always populated by
// Open(); every field is zero/false for a clean shutdown-and-reopen.
struct RecoveryReport {
  uint64_t snapshot_epoch = 0;    // epoch whose SNAP seeded the state
  uint64_t wal_epoch = 0;         // live generation new commits go to
  uint64_t wal_files_replayed = 0;
  uint64_t records_replayed = 0;
  uint64_t bytes_truncated = 0;   // torn/corrupt WAL bytes dropped
  bool wal_tail_truncated = false;
  // Damage before the live WAL's last record — more than a torn append.
  bool mid_log_corruption = false;
  // CURRENT's snapshot was unusable; an older epoch seeded recovery.
  bool snapshot_fallback = false;
  // CURRENT itself was missing/unparsable and has been rewritten.
  bool current_rewritten = false;
  uint64_t orphans_removed = 0;   // stale generations + tmp files deleted

  bool Clean() const {
    return !wal_tail_truncated && !mid_log_corruption && !snapshot_fallback &&
           !current_rewritten && bytes_truncated == 0 && orphans_removed == 0;
  }
  std::string ToString() const;
  // Machine-readable form (neptune_ctl recover --json).
  std::string ToJson() const;
};

// Replication role of one store, persisted in a small REPL file next to
// PROJECT. `term` is the fencing epoch: it is bumped exactly once per
// promotion, so a deposed primary always carries a lower term than the
// cluster's live primary and its stream is rejected by followers. A
// store with no REPL file is an ordinary standalone primary at term 0.
struct ReplRole {
  uint64_t term = 0;
  bool follower = false;
};

// A slice of one WAL generation, as shipped to followers. `bytes` is a
// whole number of frames starting at the requested offset; the CRCs
// travel with the frames so the receiver re-validates with ReadLog.
struct WalChunk {
  std::string bytes;
  // Total committed bytes in the generation at read time. For an old
  // (checkpointed) generation this is final; for the live one it grows.
  uint64_t epoch_bytes = 0;
  // True when the generation has been checkpointed away: once a
  // follower drains `epoch_bytes` it should roll to the next epoch.
  bool epoch_complete = false;
};

// Everything recovery learned from disk.
struct RecoveredState {
  std::string meta;                       // PROJECT contents
  std::string snapshot;                   // live snapshot blob
  std::vector<std::string> wal_records;   // committed records after it
  bool wal_tail_truncated = false;        // a torn commit was dropped
  RecoveryReport report;
};

class DurableStore {
 public:
  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;
  ~DurableStore();

  // Creates the directory and the initial generation. Fails with
  // AlreadyExists if the directory already holds a store. `dir_mode`
  // is applied to the directory (HAM Protections).
  static Result<std::unique_ptr<DurableStore>> Create(
      Env* env, const std::string& dir, std::string_view meta,
      std::string_view initial_snapshot, uint32_t dir_mode);

  // Opens an existing store, running recovery; the recovered state is
  // written to `*state`. `keep_wal_generations` old WAL generations
  // below the committed one survive the healthy-recovery orphan sweep
  // (they are replication tail history, not debris).
  static Result<std::unique_ptr<DurableStore>> Open(
      Env* env, const std::string& dir, RecoveredState* state,
      uint32_t keep_wal_generations = 0);

  // Creates (or atomically replaces) a store from a replicated snapshot
  // at an explicit epoch, marked as a follower at `term`. Used when a
  // follower bootstraps or is too far behind to tail and must resync.
  static Result<std::unique_ptr<DurableStore>> CreateForReplica(
      Env* env, const std::string& dir, std::string_view meta,
      std::string_view snapshot, uint64_t epoch, uint64_t term);

  // Removes the store directory and everything in it.
  static Status Destroy(Env* env, const std::string& dir);

  // True iff `dir` looks like a store (has a PROJECT file).
  static bool Exists(Env* env, const std::string& dir);

  // Reads just the PROJECT metadata without opening the store.
  static Result<std::string> ReadMeta(Env* env, const std::string& dir);

  // Appends one committed-transaction record to the live WAL.
  //
  // The first append/fsync failure puts the store into a degraded mode:
  // the failed commit's bytes may linger unsynced past the last good
  // offset, so the writer is no longer trusted. Each later append first
  // tries to repair the WAL (truncate back to the last durable record
  // and reopen); if the repair itself fails the append is rejected with
  // kReadOnly — reads keep working — until a repair or Checkpoint()
  // succeeds.
  Status AppendRecord(std::string_view record, bool sync);

  // Appends already-framed replicated bytes to the live WAL (follower
  // apply path). The caller must have CRC-validated `frames` with
  // ReadLog; degraded-mode handling matches AppendRecord.
  Status AppendRawFrames(std::string_view frames, bool sync);

  // Reads up to `max_bytes` of committed WAL frames from generation
  // `epoch` starting at byte `offset` (primary side of replication).
  // For the live generation only bytes below wal_bytes() are served —
  // anything past that is an in-flight or failed append and must not
  // ship. NotFound: the generation is gone (follower must resync from
  // a snapshot). FailedPrecondition: `offset` is past the committed
  // end (histories diverged; resync).
  Result<WalChunk> ReadWalRange(uint64_t epoch, uint64_t offset,
                                uint64_t max_bytes);

  // Reads and CRC-validates the live generation's snapshot blob
  // (snapshot transfer to a bootstrapping or lagging follower).
  Result<std::string> ReadSnapshotBlob();

  // Starts a new generation whose snapshot is `snapshot` and whose WAL
  // is empty, then removes the previous generation. On failure any
  // half-created next-generation files are removed and the store keeps
  // running on the old generation.
  Status Checkpoint(std::string_view snapshot);

  const std::string& dir() const { return dir_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t wal_bytes() const { return wal_bytes_; }
  // True while commits are being rejected with kReadOnly (see
  // AppendRecord); reads are unaffected.
  bool degraded() const { return degraded_; }

  // Replication role (see ReplRole). SetReplRole persists atomically.
  const ReplRole& repl_role() const { return repl_; }
  Status SetReplRole(const ReplRole& role);

  // How many checkpointed WAL generations Checkpoint() retains so
  // followers can tail across a checkpoint instead of re-snapshotting.
  void set_keep_wal_generations(uint32_t n) { keep_wal_generations_ = n; }
  uint32_t keep_wal_generations() const { return keep_wal_generations_; }

 private:
  DurableStore(Env* env, std::string dir, uint64_t epoch,
               std::unique_ptr<LogWriter> wal, uint64_t wal_bytes)
      : env_(env),
        dir_(std::move(dir)),
        epoch_(epoch),
        wal_(std::move(wal)),
        wal_bytes_(wal_bytes) {}

  static std::string SnapName(uint64_t epoch);
  static std::string WalName(uint64_t epoch);

  // Truncates the live WAL back to wal_bytes_ (the last good record
  // boundary) and reopens the writer. Clears degraded_ on success.
  Status RepairWal();

  // Appends through `append` with shared degraded-mode bookkeeping.
  Status AppendCommon(uint64_t framed_size,
                      const std::function<Status()>& append);

  Env* env_;
  std::string dir_;
  uint64_t epoch_;
  std::unique_ptr<LogWriter> wal_;  // null only while degraded_
  uint64_t wal_bytes_;
  bool degraded_ = false;
  ReplRole repl_;
  uint32_t keep_wal_generations_ = 0;
};

}  // namespace neptune

#endif  // NEPTUNE_STORAGE_DURABLE_STORE_H_

#include "delta/byte_delta.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/coding.h"

namespace neptune {
namespace delta {

namespace {

constexpr size_t kBlockSize = 16;
constexpr uint8_t kOpAdd = 0x00;
constexpr uint8_t kOpCopy = 0x01;
// Cap on candidate offsets kept per block hash; bounds worst-case
// encode time on highly repetitive inputs.
constexpr size_t kMaxChainLength = 8;

uint64_t HashBlock(const char* p) {
  // FNV-1a over kBlockSize bytes.
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < kBlockSize; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void EmitAdd(std::string* out, std::string_view literal) {
  if (literal.empty()) return;
  out->push_back(static_cast<char>(kOpAdd));
  PutLengthPrefixed(out, literal);
}

void EmitCopy(std::string* out, uint64_t offset, uint64_t length) {
  out->push_back(static_cast<char>(kOpCopy));
  PutVarint64(out, offset);
  PutVarint64(out, length);
}

}  // namespace

std::string EncodeDelta(std::string_view base, std::string_view target) {
  std::string out;
  PutVarint64(&out, target.size());
  if (target.empty()) return out;
  if (base.size() < kBlockSize) {
    EmitAdd(&out, target);
    return out;
  }

  // Index base blocks at kBlockSize stride.
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  index.reserve(base.size() / kBlockSize * 2);
  for (size_t off = 0; off + kBlockSize <= base.size(); off += kBlockSize) {
    auto& chain = index[HashBlock(base.data() + off)];
    if (chain.size() < kMaxChainLength) {
      chain.push_back(static_cast<uint32_t>(off));
    }
  }

  size_t lit_start = 0;  // Start of the pending literal run in target.
  size_t i = 0;
  while (i + kBlockSize <= target.size()) {
    auto it = index.find(HashBlock(target.data() + i));
    size_t best_len = 0;
    size_t best_off = 0;
    if (it != index.end()) {
      for (uint32_t cand : it->second) {
        // Verify and extend the match forward.
        size_t len = 0;
        const size_t max_len =
            std::min(base.size() - cand, target.size() - i);
        while (len < max_len && base[cand + len] == target[i + len]) ++len;
        if (len >= kBlockSize && len > best_len) {
          best_len = len;
          best_off = cand;
        }
      }
    }
    if (best_len >= kBlockSize) {
      // Extend backward into the pending literal.
      size_t back = 0;
      while (best_off > back && i > lit_start + back &&
             base[best_off - back - 1] == target[i - back - 1]) {
        ++back;
      }
      EmitAdd(&out, target.substr(lit_start, i - back - lit_start));
      EmitCopy(&out, best_off - back, best_len + back);
      i += best_len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  EmitAdd(&out, target.substr(lit_start));
  return out;
}

Result<std::string> ApplyDelta(std::string_view base,
                               std::string_view script) {
  uint64_t target_len = 0;
  if (!GetVarint64(&script, &target_len)) {
    return Status::Corruption("delta: missing target length");
  }
  std::string out;
  out.reserve(target_len);
  while (!script.empty()) {
    const uint8_t op = static_cast<uint8_t>(script.front());
    script.remove_prefix(1);
    if (op == kOpAdd) {
      std::string_view literal;
      if (!GetLengthPrefixed(&script, &literal)) {
        return Status::Corruption("delta: truncated ADD");
      }
      out.append(literal);
    } else if (op == kOpCopy) {
      uint64_t offset = 0;
      uint64_t length = 0;
      if (!GetVarint64(&script, &offset) || !GetVarint64(&script, &length)) {
        return Status::Corruption("delta: truncated COPY");
      }
      if (offset > base.size() || length > base.size() - offset) {
        return Status::Corruption("delta: COPY out of base bounds");
      }
      out.append(base.substr(offset, length));
    } else {
      return Status::Corruption("delta: unknown opcode");
    }
  }
  if (out.size() != target_len) {
    return Status::Corruption("delta: reconstructed length mismatch");
  }
  return out;
}

}  // namespace delta
}  // namespace neptune

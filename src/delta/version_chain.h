// VersionChain: the storage representation of "a complete version
// history ... at the granularity of writes" (paper §2.2) using
// backward deltas (paper §3).
//
// The chain always holds the *current* contents in full; each older
// version is a delta computed against the version that replaced it, so
// reading version k applies (newest - k) deltas backwards — recent
// versions, the common case, are cheapest. Three modes exist:
//
//   kBackwardDelta  the paper's archive representation
//   kFullCopy       every version stored whole; the baseline the
//                   paper's design is implicitly compared against
//                   ("without copying each individual item")
//   kCurrentOnly    the paper's *file* nodes: no history kept
//   kForwardDelta   the SCCS-flavoured alternative (oldest version
//                   whole + forward deltas): as compact as backward
//                   deltas, but the *current* version — the common
//                   read — costs O(history). Kept as the ablation that
//                   justifies the paper's RCS-style choice (B1/B2).
//
// Timestamps are the per-graph logical HAM Time; Get(0) means the
// current version, Get(t) the version in effect at time t.

#ifndef NEPTUNE_DELTA_VERSION_CHAIN_H_
#define NEPTUNE_DELTA_VERSION_CHAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace neptune {
namespace delta {

enum class ChainMode : uint8_t {
  kBackwardDelta = 0,
  kFullCopy = 1,
  kCurrentOnly = 2,
  kForwardDelta = 3,
};

struct VersionInfo {
  uint64_t time = 0;
  std::string explanation;
};

class VersionChain {
 public:
  explicit VersionChain(ChainMode mode = ChainMode::kBackwardDelta)
      : mode_(mode) {}

  ChainMode mode() const { return mode_; }
  bool empty() const { return versions_.empty(); }
  size_t version_count() const { return versions_.size(); }

  // Records `contents` as the new current version at `time`, which
  // must be strictly greater than the previous version's time.
  Status Append(uint64_t time, std::string_view contents,
                std::string_view explanation);

  // Contents in effect at `time` (0 = current). NotFound if the chain
  // is empty or `time` predates the first version. For kCurrentOnly
  // chains any time returns the current contents (the HAM ignores
  // Time for file nodes).
  Result<std::string> Get(uint64_t time) const;

  // Index of the version in effect at `time` (0 = current). NotFound
  // if `time` predates the first version.
  Result<size_t> VersionIndexAt(uint64_t time) const;

  const std::string& Current() const {
    return mode_ == ChainMode::kForwardDelta ? tip_ : current_;
  }
  uint64_t CurrentTime() const {
    return versions_.empty() ? 0 : versions_.back().time;
  }

  // Version metadata, oldest first.
  const std::vector<VersionInfo>& versions() const { return versions_; }

  // Bytes held by this chain (current contents + stored deltas or
  // copies); the quantity benchmark B1 measures.
  size_t StoredBytes() const;

  // Reclaims storage: drops every version strictly older than the one
  // in effect at `before`. Reads at or after `before` still work;
  // earlier times become NotFound. No-op for kCurrentOnly chains,
  // before == 0, or when nothing predates `before`. Returns the number
  // of versions dropped.
  size_t PruneBefore(uint64_t before);

  void EncodeTo(std::string* out) const;
  static Result<VersionChain> DecodeFrom(std::string_view* in);

 private:
  ChainMode mode_;
  // kForwardDelta: the OLDEST version's contents; otherwise the newest.
  std::string current_;
  std::vector<VersionInfo> versions_;  // oldest -> newest
  // Size is versions_.size() - 1. Per mode:
  //   kBackwardDelta  backward_[i] reconstructs version i from i+1
  //   kFullCopy       backward_[i] holds version i's full contents
  //   kForwardDelta   backward_[i] reconstructs version i+1 from i
  //   kCurrentOnly    unused (empty)
  std::vector<std::string> backward_;
  // kForwardDelta only: in-memory cache of the newest contents (not
  // serialized; rebuilt on decode) so appends don't replay the chain.
  std::string tip_;
};

}  // namespace delta
}  // namespace neptune

#endif  // NEPTUNE_DELTA_VERSION_CHAIN_H_

// VersionChain: the storage representation of "a complete version
// history ... at the granularity of writes" (paper §2.2) using
// backward deltas (paper §3).
//
// The chain always holds the *current* contents in full; each older
// version is a delta computed against the version that replaced it, so
// reading version k applies (newest - k) deltas backwards — recent
// versions, the common case, are cheapest. Three modes exist:
//
//   kBackwardDelta  the paper's archive representation
//   kFullCopy       every version stored whole; the baseline the
//                   paper's design is implicitly compared against
//                   ("without copying each individual item")
//   kCurrentOnly    the paper's *file* nodes: no history kept
//   kForwardDelta   the SCCS-flavoured alternative (oldest version
//                   whole + forward deltas): as compact as backward
//                   deltas, but the *current* version — the common
//                   read — costs O(history). Kept as the ablation that
//                   justifies the paper's RCS-style choice (B1/B2).
//
// Keyframes. A plain delta chain makes a historical read cost
// O(distance to the stored-whole end). With a keyframe interval K > 0
// the chain additionally stores a full copy of every K-th version, so
// a reconstruction starts from the nearest keyframe and applies at
// most ~K deltas — the RCS layout with SCCS-free random access,
// trading (StoredBytes/K-th) extra storage for a hard latency bound.
// Keyframes apply to both delta modes and are captured at Append time.
//
// Reconstructions are additionally memoized in the process-wide
// ReconstructionCache (see recon_cache.h), keyed by the chain's
// process-unique id and the canonical version time.
//
// Timestamps are the per-graph logical HAM Time; Get(0) means the
// current version, Get(t) the version in effect at time t.

#ifndef NEPTUNE_DELTA_VERSION_CHAIN_H_
#define NEPTUNE_DELTA_VERSION_CHAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace neptune {
namespace delta {

enum class ChainMode : uint8_t {
  kBackwardDelta = 0,
  kFullCopy = 1,
  kCurrentOnly = 2,
  kForwardDelta = 3,
};

struct VersionInfo {
  uint64_t time = 0;
  std::string explanation;
};

class VersionChain {
 public:
  explicit VersionChain(ChainMode mode = ChainMode::kBackwardDelta)
      : mode_(mode) {}

  ChainMode mode() const { return mode_; }
  bool empty() const { return versions_.empty(); }
  size_t version_count() const { return versions_.size(); }

  // Keyframe interval: store a full copy of every `k`-th version so a
  // reconstruction applies at most ~k deltas. 0 (the default) disables
  // keyframes. Takes effect for subsequent Appends; existing versions
  // are not re-keyframed.
  void set_keyframe_interval(uint32_t k) { keyframe_interval_ = k; }
  uint32_t keyframe_interval() const { return keyframe_interval_; }
  size_t keyframe_count() const { return keyframes_.size(); }

  // Process-unique identity used as the reconstruction-cache key.
  // Copies share the id (safe: a canonical version time names one
  // immutable contents value); PruneBefore assigns a fresh id.
  uint64_t chain_id() const { return chain_id_; }

  // Records `contents` as the new current version at `time`, which
  // must be strictly greater than the previous version's time.
  Status Append(uint64_t time, std::string_view contents,
                std::string_view explanation);

  // Contents in effect at `time` (0 = current). NotFound if the chain
  // is empty or `time` predates the first version. For kCurrentOnly
  // chains any time returns the current contents (the HAM ignores
  // Time for file nodes).
  Result<std::string> Get(uint64_t time) const;

  // Index of the version in effect at `time` (0 = current). NotFound
  // if `time` predates the first version.
  Result<size_t> VersionIndexAt(uint64_t time) const;

  const std::string& Current() const {
    return mode_ == ChainMode::kForwardDelta ? tip_ : current_;
  }
  uint64_t CurrentTime() const {
    return versions_.empty() ? 0 : versions_.back().time;
  }

  // Version metadata, oldest first.
  const std::vector<VersionInfo>& versions() const { return versions_; }

  // Bytes held by this chain (current contents + stored deltas or
  // copies + keyframes); the quantity benchmark B1 measures.
  size_t StoredBytes() const;

  // Reclaims storage: drops every version strictly older than the one
  // in effect at `before`. Reads at or after `before` still work;
  // earlier times become NotFound. No-op for kCurrentOnly chains,
  // before == 0, or when nothing predates `before`. Returns the number
  // of versions dropped. Re-ids the chain, invalidating its
  // reconstruction-cache entries.
  size_t PruneBefore(uint64_t before);

  void EncodeTo(std::string* out) const;
  static Result<VersionChain> DecodeFrom(std::string_view* in);

 private:
  // A stored-whole historical version; `index` is its position in
  // versions_ (kept ascending by index).
  struct Keyframe {
    uint64_t index = 0;
    std::string contents;
  };

  static uint64_t NewChainId();

  ChainMode mode_;
  // kForwardDelta: the OLDEST version's contents; otherwise the newest.
  std::string current_;
  std::vector<VersionInfo> versions_;  // oldest -> newest
  // Size is versions_.size() - 1. Per mode:
  //   kBackwardDelta  backward_[i] reconstructs version i from i+1
  //   kFullCopy       backward_[i] holds version i's full contents
  //   kForwardDelta   backward_[i] reconstructs version i+1 from i
  //   kCurrentOnly    unused (empty)
  std::vector<std::string> backward_;
  // kForwardDelta only: in-memory cache of the newest contents (not
  // serialized; rebuilt on decode) so appends don't replay the chain.
  std::string tip_;

  uint32_t keyframe_interval_ = 0;
  std::vector<Keyframe> keyframes_;  // ascending by index

  uint64_t chain_id_ = NewChainId();
};

}  // namespace delta
}  // namespace neptune

#endif  // NEPTUNE_DELTA_VERSION_CHAIN_H_

#include "delta/text_diff.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace neptune {
namespace delta {

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

namespace {

// Interns lines to small integers so Myers compares ints, not strings.
std::vector<int> InternLines(const std::vector<std::string>& lines,
                             std::unordered_map<std::string, int>* ids) {
  std::vector<int> out;
  out.reserve(lines.size());
  for (const auto& line : lines) {
    auto [it, inserted] =
        ids->emplace(line, static_cast<int>(ids->size()));
    out.push_back(it->second);
  }
  return out;
}

// Myers O(ND) with a full trace for backtracking. Returns, for each
// line of a and b, whether it is part of the common subsequence.
void MyersMatch(const std::vector<int>& a, const std::vector<int>& b,
                std::vector<bool>* a_matched, std::vector<bool>* b_matched) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  a_matched->assign(a.size(), false);
  b_matched->assign(b.size(), false);
  if (n == 0 || m == 0) return;

  const int max_d = n + m;
  const int offset = max_d;
  std::vector<int> v(2 * max_d + 1, 0);
  std::vector<std::vector<int>> trace;

  int final_d = -1;
  for (int d = 0; d <= max_d && final_d < 0; ++d) {
    trace.push_back(v);
    for (int k = -d; k <= d; k += 2) {
      int x;
      if (k == -d || (k != d && v[offset + k - 1] < v[offset + k + 1])) {
        x = v[offset + k + 1];  // Down: insertion from b.
      } else {
        x = v[offset + k - 1] + 1;  // Right: deletion from a.
      }
      int y = x - k;
      while (x < n && y < m && a[x] == b[y]) {
        ++x;
        ++y;
      }
      v[offset + k] = x;
      if (x >= n && y >= m) {
        final_d = d;
        break;
      }
    }
  }

  // Backtrack, marking the diagonal (matched) lines.
  int x = n;
  int y = m;
  for (int d = final_d; d > 0 && (x > 0 || y > 0); --d) {
    const std::vector<int>& pv = trace[d];
    const int k = x - y;
    int prev_k;
    if (k == -d || (k != d && pv[offset + k - 1] < pv[offset + k + 1])) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    const int prev_x = pv[offset + prev_k];
    const int prev_y = prev_x - prev_k;
    // Snake (diagonal) portion of this step.
    while (x > prev_x && y > prev_y) {
      --x;
      --y;
      (*a_matched)[x] = true;
      (*b_matched)[y] = true;
    }
    if (d > 0) {
      if (x == prev_x) {
        --y;  // Insertion.
      } else {
        --x;  // Deletion.
      }
    }
  }
  // d == 0 leading snake.
  while (x > 0 && y > 0) {
    --x;
    --y;
    (*a_matched)[x] = true;
    (*b_matched)[y] = true;
  }
}

}  // namespace

std::vector<Difference> DiffLines(std::string_view old_text,
                                  std::string_view new_text) {
  const std::vector<std::string> old_lines = SplitLines(old_text);
  const std::vector<std::string> new_lines = SplitLines(new_text);

  std::unordered_map<std::string, int> ids;
  const std::vector<int> a = InternLines(old_lines, &ids);
  const std::vector<int> b = InternLines(new_lines, &ids);

  std::vector<bool> a_matched;
  std::vector<bool> b_matched;
  MyersMatch(a, b, &a_matched, &b_matched);

  std::vector<Difference> diffs;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (i < a.size() && j < b.size() && a_matched[i] && b_matched[j]) {
      ++i;
      ++j;
      continue;
    }
    // Gather a maximal run of unmatched lines on both sides.
    Difference d;
    d.old_begin = i;
    d.new_begin = j;
    while (i < a.size() && !a_matched[i]) {
      d.old_lines.push_back(old_lines[i]);
      ++i;
    }
    while (j < b.size() && !b_matched[j]) {
      d.new_lines.push_back(new_lines[j]);
      ++j;
    }
    d.old_end = i;
    d.new_end = j;
    if (d.old_lines.empty() && d.new_lines.empty()) continue;
    if (d.old_lines.empty()) {
      d.kind = DifferenceKind::kInsertion;
    } else if (d.new_lines.empty()) {
      d.kind = DifferenceKind::kDeletion;
    } else {
      d.kind = DifferenceKind::kReplacement;
    }
    diffs.push_back(std::move(d));
  }
  return diffs;
}

std::string FormatDifferences(const std::vector<Difference>& diffs) {
  std::string out;
  auto range = [](size_t begin, size_t end) {
    // 1-based inclusive, classic diff style.
    if (end == begin) return std::to_string(begin);  // position only
    if (end - begin == 1) return std::to_string(begin + 1);
    return std::to_string(begin + 1) + "," + std::to_string(end);
  };
  for (const Difference& d : diffs) {
    char op = d.kind == DifferenceKind::kInsertion   ? 'a'
              : d.kind == DifferenceKind::kDeletion ? 'd'
                                                    : 'c';
    out += range(d.old_begin, d.old_end);
    out += op;
    out += range(d.new_begin, d.new_end);
    out += '\n';
    for (const auto& line : d.old_lines) {
      out += "< " + line + "\n";
    }
    if (d.kind == DifferenceKind::kReplacement) out += "---\n";
    for (const auto& line : d.new_lines) {
      out += "> " + line + "\n";
    }
  }
  return out;
}

}  // namespace delta
}  // namespace neptune

#include "delta/version_chain.h"

#include <algorithm>
#include <atomic>

#include "common/coding.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "delta/byte_delta.h"
#include "delta/recon_cache.h"

namespace neptune {
namespace delta {

namespace {

// New-format chains set this bit on the mode byte; legacy blobs
// (mode byte 0..3) decode unchanged.
constexpr uint8_t kKeyframeFlag = 0x80;

}  // namespace

uint64_t VersionChain::NewChainId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Status VersionChain::Append(uint64_t time, std::string_view contents,
                            std::string_view explanation) {
  if (time == 0) {
    return Status::InvalidArgument("version time 0 is reserved for 'current'");
  }
  if (!versions_.empty() && time <= versions_.back().time) {
    return Status::InvalidArgument("version times must strictly increase");
  }
  if (mode_ == ChainMode::kCurrentOnly) {
    // A file node: replace, keep only the latest version record.
    versions_.assign(1, VersionInfo{time, std::string(explanation)});
    current_.assign(contents);
    return Status::OK();
  }
  if (mode_ == ChainMode::kForwardDelta) {
    if (versions_.empty()) {
      current_.assign(contents);  // the oldest version is the base
    } else {
      backward_.push_back(EncodeDelta(/*base=*/tip_, /*target=*/contents));
      // What a full copy of the new version would have cost vs. the
      // delta we kept — same storage claim as the backward mode.
      NEPTUNE_METRIC_COUNT("delta.bytes.raw", contents.size());
      NEPTUNE_METRIC_COUNT("delta.bytes.stored", backward_.back().size());
      // Keyframe the new version (index = its position) every K-th.
      const size_t index = versions_.size();
      if (keyframe_interval_ > 0 && index % keyframe_interval_ == 0) {
        keyframes_.push_back(Keyframe{index, std::string(contents)});
      }
    }
    tip_.assign(contents);
    versions_.push_back(VersionInfo{time, std::string(explanation)});
    return Status::OK();
  }
  if (!versions_.empty()) {
    if (mode_ == ChainMode::kBackwardDelta) {
      backward_.push_back(EncodeDelta(/*base=*/contents, /*target=*/current_));
      // Measures the paper's storage claim: what a full copy of the
      // displaced version would have cost vs. the delta we kept.
      NEPTUNE_METRIC_COUNT("delta.bytes.raw", current_.size());
      NEPTUNE_METRIC_COUNT("delta.bytes.stored", backward_.back().size());
      // Keyframe the displaced version (we hold it whole right now).
      const size_t displaced = versions_.size() - 1;
      if (keyframe_interval_ > 0 && displaced % keyframe_interval_ == 0) {
        keyframes_.push_back(Keyframe{displaced, current_});
      }
    } else {
      backward_.push_back(current_);
    }
  }
  versions_.push_back(VersionInfo{time, std::string(explanation)});
  current_.assign(contents);
  return Status::OK();
}

Result<size_t> VersionChain::VersionIndexAt(uint64_t time) const {
  if (versions_.empty()) return Status::NotFound("no versions");
  if (time == 0) return versions_.size() - 1;
  // Latest version whose time <= `time`.
  auto it = std::upper_bound(
      versions_.begin(), versions_.end(), time,
      [](uint64_t t, const VersionInfo& v) { return t < v.time; });
  if (it == versions_.begin()) {
    return Status::NotFound("no version at or before time " +
                            std::to_string(time));
  }
  return static_cast<size_t>(std::distance(versions_.begin(), it)) - 1;
}

Result<std::string> VersionChain::Get(uint64_t time) const {
  if (versions_.empty()) return Status::NotFound("no versions");
  if (mode_ == ChainMode::kCurrentOnly) return current_;
  NEPTUNE_ASSIGN_OR_RETURN(size_t index, VersionIndexAt(time));
  if (mode_ == ChainMode::kForwardDelta) {
    if (index == versions_.size() - 1) return tip_;
    const uint64_t canonical = versions_[index].time;
    NEPTUNE_TRACE_SPAN(span, "delta.reconstruct");
    std::string cached;
    if (ReconstructionCache::Instance().Lookup(chain_id_, canonical,
                                               &cached)) {
      if (span.active()) span.Annotate("cache=hit");
      return cached;
    }
    // Walk forward deltas up from the nearest keyframe at or below
    // `index` (or the oldest version) to `index`.
    size_t start = 0;
    const std::string* base = &current_;
    auto kf = std::upper_bound(
        keyframes_.begin(), keyframes_.end(), index,
        [](size_t i, const Keyframe& k) { return i < k.index; });
    if (kf != keyframes_.begin()) {
      --kf;
      if (kf->index > start) {
        start = static_cast<size_t>(kf->index);
        base = &kf->contents;
      }
    }
    NEPTUNE_METRIC_COUNT("delta.chain.reconstructions", 1);
    NEPTUNE_METRIC_COUNT("delta.chain.deltas_applied", index - start);
    if (span.active()) {
      span.Annotate("cache=miss deltas=" + std::to_string(index - start));
    }
    std::string contents = *base;
    for (size_t i = start; i < index; ++i) {
      NEPTUNE_ASSIGN_OR_RETURN(contents, ApplyDelta(contents, backward_[i]));
    }
    ReconstructionCache::Instance().Insert(chain_id_, canonical, contents);
    return contents;
  }
  if (index == versions_.size() - 1) return current_;
  if (mode_ == ChainMode::kFullCopy) return backward_[index];
  const uint64_t canonical = versions_[index].time;
  NEPTUNE_TRACE_SPAN(span, "delta.reconstruct");
  std::string cached;
  if (ReconstructionCache::Instance().Lookup(chain_id_, canonical, &cached)) {
    if (span.active()) span.Annotate("cache=hit");
    return cached;
  }
  // Walk backward deltas down to `index` from the nearest keyframe at
  // or above it (or the current version).
  size_t start = versions_.size() - 1;
  const std::string* base = &current_;
  auto kf = std::lower_bound(
      keyframes_.begin(), keyframes_.end(), index,
      [](const Keyframe& k, size_t i) { return k.index < i; });
  if (kf != keyframes_.end() && static_cast<size_t>(kf->index) < start) {
    start = static_cast<size_t>(kf->index);
    base = &kf->contents;
  }
  NEPTUNE_METRIC_COUNT("delta.chain.reconstructions", 1);
  NEPTUNE_METRIC_COUNT("delta.chain.deltas_applied", start - index);
  if (span.active()) {
    span.Annotate("cache=miss deltas=" + std::to_string(start - index));
  }
  std::string contents = *base;
  for (size_t i = start; i-- > index;) {
    NEPTUNE_ASSIGN_OR_RETURN(contents, ApplyDelta(contents, backward_[i]));
  }
  ReconstructionCache::Instance().Insert(chain_id_, canonical, contents);
  return contents;
}

size_t VersionChain::PruneBefore(uint64_t before) {
  if (mode_ == ChainMode::kCurrentOnly || before == 0 || versions_.empty()) {
    return 0;
  }
  Result<size_t> index = VersionIndexAt(before);
  if (!index.ok() || *index == 0) return 0;
  const size_t drop = *index;
  if (mode_ == ChainMode::kForwardDelta) {
    // Rebase: the version at the horizon becomes the new oldest base.
    Result<std::string> base = Get(versions_[drop].time);
    if (!base.ok()) return 0;
    current_ = std::move(*base);
  }
  versions_.erase(versions_.begin(),
                  versions_.begin() + static_cast<ptrdiff_t>(drop));
  backward_.erase(backward_.begin(),
                  backward_.begin() + static_cast<ptrdiff_t>(drop));
  // Keyframes below the horizon go; survivors shift with the indices.
  keyframes_.erase(
      std::remove_if(keyframes_.begin(), keyframes_.end(),
                     [&](const Keyframe& k) { return k.index < drop; }),
      keyframes_.end());
  for (Keyframe& k : keyframes_) k.index -= drop;
  // Re-id so stale reconstruction-cache entries can never be served
  // (they were keyed under the old id) and age out of the LRU.
  chain_id_ = NewChainId();
  return drop;
}

size_t VersionChain::StoredBytes() const {
  size_t total = current_.size();
  for (const auto& d : backward_) total += d.size();
  for (const auto& k : keyframes_) total += k.contents.size();
  return total;
}

void VersionChain::EncodeTo(std::string* out) const {
  // Chains that never saw a keyframe encode byte-identically to the
  // legacy format, so pre-keyframe readers of such snapshots and all
  // existing codec tests are unaffected.
  const bool keyframed = keyframe_interval_ > 0 || !keyframes_.empty();
  out->push_back(static_cast<char>(static_cast<uint8_t>(mode_) |
                                   (keyframed ? kKeyframeFlag : 0)));
  if (keyframed) {
    PutVarint32(out, keyframe_interval_);
    PutVarint64(out, keyframes_.size());
    for (const Keyframe& k : keyframes_) {
      PutVarint64(out, k.index);
      PutLengthPrefixed(out, k.contents);
    }
  }
  PutLengthPrefixed(out, current_);
  PutVarint64(out, versions_.size());
  for (const auto& v : versions_) {
    PutVarint64(out, v.time);
    PutLengthPrefixed(out, v.explanation);
  }
  PutVarint64(out, backward_.size());
  for (const auto& d : backward_) {
    PutLengthPrefixed(out, d);
  }
}

Result<VersionChain> VersionChain::DecodeFrom(std::string_view* in) {
  if (in->empty()) return Status::Corruption("version chain: empty input");
  const uint8_t first = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  const bool keyframed = (first & kKeyframeFlag) != 0;
  const uint8_t mode_byte = first & ~kKeyframeFlag;
  if (mode_byte > static_cast<uint8_t>(ChainMode::kForwardDelta)) {
    return Status::Corruption("version chain: bad mode");
  }
  VersionChain chain(static_cast<ChainMode>(mode_byte));
  if (keyframed) {
    uint64_t nk = 0;
    if (!GetVarint32(in, &chain.keyframe_interval_) || !GetVarint64(in, &nk)) {
      return Status::Corruption("version chain: truncated keyframe header");
    }
    chain.keyframes_.reserve(nk);
    uint64_t prev_index = 0;
    for (uint64_t i = 0; i < nk; ++i) {
      Keyframe k;
      std::string_view contents;
      if (!GetVarint64(in, &k.index) || !GetLengthPrefixed(in, &contents)) {
        return Status::Corruption("version chain: truncated keyframe");
      }
      if (i > 0 && k.index <= prev_index) {
        return Status::Corruption("version chain: keyframes out of order");
      }
      prev_index = k.index;
      k.contents.assign(contents);
      chain.keyframes_.push_back(std::move(k));
    }
  }
  std::string_view current;
  if (!GetLengthPrefixed(in, &current)) {
    return Status::Corruption("version chain: truncated contents");
  }
  chain.current_.assign(current);
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("version chain: truncated version count");
  }
  chain.versions_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VersionInfo v;
    std::string_view expl;
    if (!GetVarint64(in, &v.time) || !GetLengthPrefixed(in, &expl)) {
      return Status::Corruption("version chain: truncated version info");
    }
    v.explanation.assign(expl);
    chain.versions_.push_back(std::move(v));
  }
  uint64_t nd = 0;
  if (!GetVarint64(in, &nd)) {
    return Status::Corruption("version chain: truncated delta count");
  }
  if (chain.mode_ != ChainMode::kCurrentOnly &&
      nd + 1 != n && !(nd == 0 && n == 0)) {
    return Status::Corruption("version chain: delta/version count mismatch");
  }
  if (!chain.keyframes_.empty() && chain.keyframes_.back().index >= n) {
    return Status::Corruption("version chain: keyframe index out of range");
  }
  chain.backward_.reserve(nd);
  for (uint64_t i = 0; i < nd; ++i) {
    std::string_view d;
    if (!GetLengthPrefixed(in, &d)) {
      return Status::Corruption("version chain: truncated delta");
    }
    chain.backward_.emplace_back(d);
  }
  if (chain.mode_ == ChainMode::kForwardDelta && !chain.versions_.empty()) {
    // Rebuild the in-memory tip cache by replaying the chain — from
    // the last keyframe when one exists, else the whole chain.
    size_t start = 0;
    std::string tip = chain.current_;
    if (!chain.keyframes_.empty()) {
      start = static_cast<size_t>(chain.keyframes_.back().index);
      tip = chain.keyframes_.back().contents;
    }
    for (size_t i = start; i < chain.backward_.size(); ++i) {
      NEPTUNE_ASSIGN_OR_RETURN(tip, ApplyDelta(tip, chain.backward_[i]));
    }
    chain.tip_ = std::move(tip);
  }
  return chain;
}

}  // namespace delta
}  // namespace neptune

#include "delta/version_chain.h"

#include <algorithm>

#include "common/coding.h"
#include "common/metrics.h"
#include "delta/byte_delta.h"

namespace neptune {
namespace delta {

Status VersionChain::Append(uint64_t time, std::string_view contents,
                            std::string_view explanation) {
  if (time == 0) {
    return Status::InvalidArgument("version time 0 is reserved for 'current'");
  }
  if (!versions_.empty() && time <= versions_.back().time) {
    return Status::InvalidArgument("version times must strictly increase");
  }
  if (mode_ == ChainMode::kCurrentOnly) {
    // A file node: replace, keep only the latest version record.
    versions_.assign(1, VersionInfo{time, std::string(explanation)});
    current_.assign(contents);
    return Status::OK();
  }
  if (mode_ == ChainMode::kForwardDelta) {
    if (versions_.empty()) {
      current_.assign(contents);  // the oldest version is the base
    } else {
      backward_.push_back(EncodeDelta(/*base=*/tip_, /*target=*/contents));
    }
    tip_.assign(contents);
    versions_.push_back(VersionInfo{time, std::string(explanation)});
    return Status::OK();
  }
  if (!versions_.empty()) {
    if (mode_ == ChainMode::kBackwardDelta) {
      backward_.push_back(EncodeDelta(/*base=*/contents, /*target=*/current_));
      // Measures the paper's storage claim: what a full copy of the
      // displaced version would have cost vs. the delta we kept.
      NEPTUNE_METRIC_COUNT("delta.bytes.raw", current_.size());
      NEPTUNE_METRIC_COUNT("delta.bytes.stored", backward_.back().size());
    } else {
      backward_.push_back(current_);
    }
  }
  versions_.push_back(VersionInfo{time, std::string(explanation)});
  current_.assign(contents);
  return Status::OK();
}

Result<size_t> VersionChain::VersionIndexAt(uint64_t time) const {
  if (versions_.empty()) return Status::NotFound("no versions");
  if (time == 0) return versions_.size() - 1;
  // Latest version whose time <= `time`.
  auto it = std::upper_bound(
      versions_.begin(), versions_.end(), time,
      [](uint64_t t, const VersionInfo& v) { return t < v.time; });
  if (it == versions_.begin()) {
    return Status::NotFound("no version at or before time " +
                            std::to_string(time));
  }
  return static_cast<size_t>(std::distance(versions_.begin(), it)) - 1;
}

Result<std::string> VersionChain::Get(uint64_t time) const {
  if (versions_.empty()) return Status::NotFound("no versions");
  if (mode_ == ChainMode::kCurrentOnly) return current_;
  NEPTUNE_ASSIGN_OR_RETURN(size_t index, VersionIndexAt(time));
  if (mode_ == ChainMode::kForwardDelta) {
    if (index == versions_.size() - 1) return tip_;
    // Walk forward deltas up from the oldest version to `index`.
    NEPTUNE_METRIC_COUNT("delta.chain.reconstructions", 1);
    NEPTUNE_METRIC_COUNT("delta.chain.deltas_applied", index);
    std::string contents = current_;
    for (size_t i = 0; i < index; ++i) {
      NEPTUNE_ASSIGN_OR_RETURN(contents, ApplyDelta(contents, backward_[i]));
    }
    return contents;
  }
  if (index == versions_.size() - 1) return current_;
  if (mode_ == ChainMode::kFullCopy) return backward_[index];
  // Walk backward deltas from the current version down to `index`.
  NEPTUNE_METRIC_COUNT("delta.chain.reconstructions", 1);
  NEPTUNE_METRIC_COUNT("delta.chain.deltas_applied",
                       versions_.size() - 1 - index);
  std::string contents = current_;
  for (size_t i = versions_.size() - 1; i-- > index;) {
    NEPTUNE_ASSIGN_OR_RETURN(contents, ApplyDelta(contents, backward_[i]));
  }
  return contents;
}

size_t VersionChain::PruneBefore(uint64_t before) {
  if (mode_ == ChainMode::kCurrentOnly || before == 0 || versions_.empty()) {
    return 0;
  }
  Result<size_t> index = VersionIndexAt(before);
  if (!index.ok() || *index == 0) return 0;
  const size_t drop = *index;
  if (mode_ == ChainMode::kForwardDelta) {
    // Rebase: the version at the horizon becomes the new oldest base.
    Result<std::string> base = Get(versions_[drop].time);
    if (!base.ok()) return 0;
    current_ = std::move(*base);
  }
  versions_.erase(versions_.begin(),
                  versions_.begin() + static_cast<ptrdiff_t>(drop));
  backward_.erase(backward_.begin(),
                  backward_.begin() + static_cast<ptrdiff_t>(drop));
  return drop;
}

size_t VersionChain::StoredBytes() const {
  size_t total = current_.size();
  for (const auto& d : backward_) total += d.size();
  return total;
}

void VersionChain::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(mode_));
  PutLengthPrefixed(out, current_);
  PutVarint64(out, versions_.size());
  for (const auto& v : versions_) {
    PutVarint64(out, v.time);
    PutLengthPrefixed(out, v.explanation);
  }
  PutVarint64(out, backward_.size());
  for (const auto& d : backward_) {
    PutLengthPrefixed(out, d);
  }
}

Result<VersionChain> VersionChain::DecodeFrom(std::string_view* in) {
  if (in->empty()) return Status::Corruption("version chain: empty input");
  const uint8_t mode_byte = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  if (mode_byte > static_cast<uint8_t>(ChainMode::kForwardDelta)) {
    return Status::Corruption("version chain: bad mode");
  }
  VersionChain chain(static_cast<ChainMode>(mode_byte));
  std::string_view current;
  if (!GetLengthPrefixed(in, &current)) {
    return Status::Corruption("version chain: truncated contents");
  }
  chain.current_.assign(current);
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) {
    return Status::Corruption("version chain: truncated version count");
  }
  chain.versions_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VersionInfo v;
    std::string_view expl;
    if (!GetVarint64(in, &v.time) || !GetLengthPrefixed(in, &expl)) {
      return Status::Corruption("version chain: truncated version info");
    }
    v.explanation.assign(expl);
    chain.versions_.push_back(std::move(v));
  }
  uint64_t nd = 0;
  if (!GetVarint64(in, &nd)) {
    return Status::Corruption("version chain: truncated delta count");
  }
  if (chain.mode_ != ChainMode::kCurrentOnly &&
      nd + 1 != n && !(nd == 0 && n == 0)) {
    return Status::Corruption("version chain: delta/version count mismatch");
  }
  chain.backward_.reserve(nd);
  for (uint64_t i = 0; i < nd; ++i) {
    std::string_view d;
    if (!GetLengthPrefixed(in, &d)) {
      return Status::Corruption("version chain: truncated delta");
    }
    chain.backward_.emplace_back(d);
  }
  if (chain.mode_ == ChainMode::kForwardDelta && !chain.versions_.empty()) {
    // Rebuild the in-memory tip cache by replaying the chain.
    std::string tip = chain.current_;
    for (const std::string& d : chain.backward_) {
      NEPTUNE_ASSIGN_OR_RETURN(tip, ApplyDelta(tip, d));
    }
    chain.tip_ = std::move(tip);
  }
  return chain;
}

}  // namespace delta
}  // namespace neptune

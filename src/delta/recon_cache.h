// ReconstructionCache: a process-wide sharded LRU cache of historical
// version reconstructions, keyed by (chain id, canonical version
// time). Walking a delta chain is the one read the HAM cannot serve in
// O(1); with many concurrent readers revisiting the same historical
// versions (version browsers, diffs, trails) the same walk repeats.
// The cache remembers the result so only the first reader pays.
//
// Keying. Every VersionChain gets a process-unique id at construction;
// copies (transaction/context copy-on-write) share the id. That is
// safe because the key's time component is the *canonical* version
// time (versions_[index].time after resolving the requested time), a
// graph-wide logical timestamp assigned exactly once — a given
// (id, canonical time) pair can only ever name one contents value.
// PruneBefore re-ids the chain, dropping its entries wholesale.
//
// Concurrency. Shards are guarded by per-shard mutexes, so readers
// holding only a shared graph lock may probe and fill concurrently.
// Hits/misses/evictions are reported as `delta.cache.*` metrics.

#ifndef NEPTUNE_DELTA_RECON_CACHE_H_
#define NEPTUNE_DELTA_RECON_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace neptune {
namespace delta {

class ReconstructionCache {
 public:
  static ReconstructionCache& Instance();

  // Copies the cached contents into `*out` and returns true on a hit.
  // Bumps delta.cache.hit / delta.cache.miss.
  bool Lookup(uint64_t chain_id, uint64_t version_time, std::string* out);

  // Inserts (or refreshes) an entry, evicting least-recently-used
  // entries from the shard until it fits. Entries larger than a
  // shard's capacity are not cached.
  void Insert(uint64_t chain_id, uint64_t version_time,
              const std::string& contents);

  // Total capacity in bytes across all shards; 0 disables the cache
  // (lookups miss, inserts drop). Existing entries are evicted to fit.
  void set_capacity_bytes(size_t bytes);
  size_t capacity_bytes() const {
    return shard_capacity_.load(std::memory_order_relaxed) * kShards;
  }

  // Current totals, for tests and stats.
  size_t SizeBytes() const;
  size_t EntryCount() const;

  // Drops every entry (tests).
  void Clear();

 private:
  ReconstructionCache() = default;

  static constexpr size_t kShards = 8;  // power of two

  struct Entry {
    uint64_t chain_id;
    uint64_t version_time;
    std::string contents;
  };
  using Lru = std::list<Entry>;

  struct KeyHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& k) const {
      // 64-bit mix of both halves (splitmix64 finalizer).
      uint64_t x = k.first * 0x9e3779b97f4a7c15ull + k.second;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
      return static_cast<size_t>(x);
    }
  };

  struct Shard {
    std::mutex mu;
    Lru lru;  // front = most recently used
    std::unordered_map<std::pair<uint64_t, uint64_t>, Lru::iterator, KeyHash>
        map;
    size_t bytes = 0;
  };

  Shard& ShardFor(uint64_t chain_id, uint64_t version_time) {
    return shards_[KeyHash()({chain_id, version_time}) & (kShards - 1)];
  }
  // Caller holds shard.mu.
  void EvictToFit(Shard* shard, size_t budget);

  std::atomic<size_t> shard_capacity_{(8ull << 20) / kShards};
  Shard shards_[kShards];
};

}  // namespace delta
}  // namespace neptune

#endif  // NEPTUNE_DELTA_RECON_CACHE_H_

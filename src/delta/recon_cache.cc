#include "delta/recon_cache.h"

#include "common/metrics.h"

namespace neptune {
namespace delta {

ReconstructionCache& ReconstructionCache::Instance() {
  static ReconstructionCache* cache = new ReconstructionCache();
  return *cache;
}

bool ReconstructionCache::Lookup(uint64_t chain_id, uint64_t version_time,
                                 std::string* out) {
  Shard& shard = ShardFor(chain_id, version_time);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find({chain_id, version_time});
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out->assign(it->second->contents);
      NEPTUNE_METRIC_COUNT("delta.cache.hit", 1);
      return true;
    }
  }
  NEPTUNE_METRIC_COUNT("delta.cache.miss", 1);
  return false;
}

void ReconstructionCache::Insert(uint64_t chain_id, uint64_t version_time,
                                 const std::string& contents) {
  const size_t budget = shard_capacity_.load(std::memory_order_relaxed);
  if (contents.size() > budget) return;  // would evict the whole shard
  Shard& shard = ShardFor(chain_id, version_time);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find({chain_id, version_time});
  if (it != shard.map.end()) {
    // (id, canonical time) names immutable contents, so a re-insert
    // can only be a refresh of the same bytes.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  EvictToFit(&shard, budget - contents.size());
  shard.lru.push_front(Entry{chain_id, version_time, contents});
  shard.map.emplace(std::make_pair(chain_id, version_time),
                    shard.lru.begin());
  shard.bytes += contents.size();
  NEPTUNE_METRIC_COUNT("delta.cache.inserted", 1);
}

void ReconstructionCache::EvictToFit(Shard* shard, size_t budget) {
  while (shard->bytes > budget && !shard->lru.empty()) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.contents.size();
    shard->map.erase({victim.chain_id, victim.version_time});
    shard->lru.pop_back();
    NEPTUNE_METRIC_COUNT("delta.cache.evicted", 1);
  }
}

void ReconstructionCache::set_capacity_bytes(size_t bytes) {
  const size_t per_shard = bytes / kShards;
  shard_capacity_.store(per_shard, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictToFit(&shard, per_shard);
  }
}

size_t ReconstructionCache::SizeBytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    total += shard.bytes;
  }
  return total;
}

size_t ReconstructionCache::EntryCount() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    total += shard.map.size();
  }
  return total;
}

void ReconstructionCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
    shard.bytes = 0;
  }
}

}  // namespace delta
}  // namespace neptune

// Line-oriented differencing (Myers O(ND)) for the HAM's
// getNodeDifferences operation and the node-differences browser.
//
// The Appendix defines the Difference domain as "a deletion, insertion
// or replacement"; DiffLines computes a minimal line edit script and
// coalesces adjacent edits into those three shapes.

#ifndef NEPTUNE_DELTA_TEXT_DIFF_H_
#define NEPTUNE_DELTA_TEXT_DIFF_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace neptune {
namespace delta {

enum class DifferenceKind { kInsertion, kDeletion, kReplacement };

// One hunk of difference between an old and a new version.
// Line ranges are 0-based half-open intervals into the respective
// versions' line lists. For an insertion old_begin == old_end (the
// position the lines were inserted at); for a deletion new_begin ==
// new_end.
struct Difference {
  DifferenceKind kind;
  size_t old_begin = 0;
  size_t old_end = 0;
  size_t new_begin = 0;
  size_t new_end = 0;
  std::vector<std::string> old_lines;
  std::vector<std::string> new_lines;
};

// Splits text into lines; a trailing '\n' does not create an empty
// final line.
std::vector<std::string> SplitLines(std::string_view text);

// Minimal line-level differences transforming `old_text` into
// `new_text`. Empty result iff the texts split into identical lines.
std::vector<Difference> DiffLines(std::string_view old_text,
                                  std::string_view new_text);

// Human-readable rendering ("3d2", "4a5,6"-style headers with -/+
// lines), used by the version browser and tests.
std::string FormatDifferences(const std::vector<Difference>& diffs);

}  // namespace delta
}  // namespace neptune

#endif  // NEPTUNE_DELTA_TEXT_DIFF_H_

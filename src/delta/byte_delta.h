// Byte-oriented delta compression used by the backward-delta version
// chains (paper §3: "effective storage of many versions of such data
// without copying each individual item; for nodes this is provided by
// backward deltas similar to RCS").
//
// EncodeDelta(base, target) produces a compact script of COPY(offset,
// length)-from-base and ADD(literal-bytes) instructions such that
// ApplyDelta(base, script) == target. Node contents are uninterpreted
// binary at the HAM level, so the encoder works on raw bytes (block
// matching, xdelta-style) rather than lines.
//
// Script encoding (varints):
//   0x00 <varint len> <len bytes>            ADD
//   0x01 <varint offset> <varint len>        COPY from base
// The script is prefixed with a varint of the target length so Apply
// can validate the result.

#ifndef NEPTUNE_DELTA_BYTE_DELTA_H_
#define NEPTUNE_DELTA_BYTE_DELTA_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace neptune {
namespace delta {

// Returns a script that transforms `base` into `target`.
std::string EncodeDelta(std::string_view base, std::string_view target);

// Replays `script` against `base`. Fails with Corruption if the script
// is malformed, references bytes outside `base`, or produces a result
// whose length disagrees with the script header.
Result<std::string> ApplyDelta(std::string_view base, std::string_view script);

}  // namespace delta
}  // namespace neptune

#endif  // NEPTUNE_DELTA_BYTE_DELTA_H_

#include "obs/window.h"

#include <algorithm>

namespace neptune {
namespace obs {

MetricsWindow& MetricsWindow::Instance() {
  static MetricsWindow* window = new MetricsWindow();
  return *window;
}

void MetricsWindow::SampleNow(TimeSource* time) {
  AddSample(time->NowMicros(), MetricsRegistry::Instance().Snapshot());
}

void MetricsWindow::AddSample(uint64_t at_us, MetricsSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  // Out-of-order stamps (two samplers racing, or a virtual clock reset
  // between sim scenarios) would make deltas negative; keep the ring
  // monotonic by dropping anything not newer than the newest sample.
  if (!samples_.empty() && at_us <= samples_.back().at_us) return;
  samples_.push_back(Sample{at_us, std::move(snapshot)});
  while (samples_.size() > capacity_) samples_.pop_front();
}

size_t MetricsWindow::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

namespace {

uint64_t ClampedSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

bool MetricsWindow::Delta(uint64_t window_us, MetricsSnapshot* out,
                          uint64_t* elapsed_us) const {
  *out = MetricsSnapshot();
  *elapsed_us = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < 2) return false;
  const Sample& newest = samples_.back();
  // The newest sample at least `window_us` old; the oldest sample when
  // the ring does not reach back that far yet.
  const Sample* base = &samples_.front();
  for (size_t i = samples_.size() - 1; i-- > 0;) {
    if (newest.at_us - samples_[i].at_us >= window_us) {
      base = &samples_[i];
      break;
    }
  }
  if (newest.at_us <= base->at_us) return false;
  *elapsed_us = newest.at_us - base->at_us;
  for (const auto& [name, value] : newest.snapshot.counters) {
    out->counters[name] = ClampedSub(value, base->snapshot.CounterValue(name));
  }
  out->gauges = newest.snapshot.gauges;
  for (const auto& [name, hist] : newest.snapshot.histograms) {
    HistogramSnapshot delta;
    auto it = base->snapshot.histograms.find(name);
    if (it == base->snapshot.histograms.end()) {
      delta = hist;
    } else {
      const HistogramSnapshot& old = it->second;
      delta.count = ClampedSub(hist.count, old.count);
      delta.sum = ClampedSub(hist.sum, old.sum);
      // Cumulative maxima cannot be subtracted; the newest max is a
      // valid upper bound for the window.
      delta.max = hist.max;
      delta.buckets.reserve(hist.buckets.size());
      for (size_t i = 0; i < hist.buckets.size(); ++i) {
        const uint64_t before = i < old.buckets.size() ? old.buckets[i] : 0;
        delta.buckets.push_back(ClampedSub(hist.buckets[i], before));
      }
    }
    out->histograms[name] = std::move(delta);
  }
  return true;
}

double MetricsWindow::CounterRate(const std::string& name,
                                  uint64_t window_us) const {
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  if (!Delta(window_us, &delta, &elapsed) || elapsed == 0) return 0.0;
  return static_cast<double>(delta.CounterValue(name)) * 1e6 /
         static_cast<double>(elapsed);
}

// ------------------------------------------------------------- sampler

StatsSampler::StatsSampler(MetricsWindow* window, Options options)
    : window_(window),
      options_(options),
      time_(options.time_source != nullptr ? options.time_source
                                           : RealTimeSource()) {}

StatsSampler::~StatsSampler() { Stop(); }

void StatsSampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Main(); });
}

void StatsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  if (thread_.joinable()) thread_.join();
}

void StatsSampler::Main() {
  // Sleep the interval in short slices so Stop() never waits a full
  // tick; all pacing goes through the TimeSource seam.
  constexpr uint64_t kSliceUs = 100'000;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    SampleOnce();
    uint64_t remaining = options_.interval_us;
    while (remaining > 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
      }
      const uint64_t slice = std::min(remaining, kSliceUs);
      time_->SleepMicros(slice);
      remaining -= slice;
    }
  }
}

}  // namespace obs
}  // namespace neptune

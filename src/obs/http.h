// The embedded observability HTTP listener: a single thread on the
// rpc::Poller readiness loop serving three GET endpoints on
// 127.0.0.1:
//
//   /metrics  Prometheus text exposition of the cumulative registry
//             (obs/prometheus.h) — what a scraper points at.
//   /statusz  One JSON object an operator (or the router tier) reads
//             first: role, term, replication lag, uptime, build info,
//             and windowed request rates when a MetricsWindow is
//             attached.
//   /statsz   The full registry as JSON (MetricsSnapshot::ToJson).
//
// This is deliberately not a web server: GET only, request line + CRLF
// headers parsed just far enough to route, every response closes the
// connection. It shares no state with the RPC plane beyond the metrics
// registry, so it keeps answering while the RPC loops are saturated —
// that is the point of a separate health port.

#ifndef NEPTUNE_OBS_HTTP_H_
#define NEPTUNE_OBS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/result.h"
#include "obs/window.h"
#include "rpc/poller.h"
#include "rpc/socket.h"

namespace neptune {
namespace obs {

// The /statusz payload. Role and term come from the repl.role /
// repl.term gauges unless the host overrides them; `extra` lands as
// additional string fields (e.g. data directory, RPC port).
std::string BuildStatusz(uint64_t uptime_us, const MetricsWindow* window,
                         const std::map<std::string, std::string>& extra);

class MetricsHttpServer {
 public:
  struct Options {
    // Clock for uptime and idle tracking. nullptr = process real clock.
    TimeSource* time_source = nullptr;
    // Windowed rates for /statusz; nullptr omits the "rates" object.
    const MetricsWindow* window = nullptr;
    // Extra string fields merged into /statusz.
    std::map<std::string, std::string> statusz_extra;
  };

  explicit MetricsHttpServer(Options options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving
  // thread. Returns the bound port.
  Result<uint16_t> Start(uint16_t port);
  void Stop();

  uint16_t port() const { return port_; }

 private:
  struct Conn;

  void Main();
  // Routes one parsed request line; returns the full HTTP response.
  std::string Respond(const std::string& method, const std::string& path);
  // Feeds freshly read bytes; true once a full header is buffered and
  // the response has been queued.
  bool OnReadable(Conn* conn);
  bool FlushConn(Conn* conn);  // false once the conn should be dropped
  void CloseConn(int fd);

  Options options_;
  TimeSource* time_;
  std::unique_ptr<rpc::Listener> listener_;
  std::unique_ptr<rpc::Poller> poller_;
  uint16_t port_ = 0;
  uint64_t start_us_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::map<int, std::unique_ptr<Conn>> conns_;
};

}  // namespace obs
}  // namespace neptune

#endif  // NEPTUNE_OBS_HTTP_H_

// Prometheus text exposition (format version 0.0.4) for the metrics
// registry. Neptune's internal metric names use dotted lower-case
// ("repl.apply_lag_us"); Prometheus requires [a-zA-Z_:][a-zA-Z0-9_:]*,
// so dots map to underscores. Counters gain the conventional `_total`
// suffix; histograms expand to the cumulative `_bucket{le="..."}` /
// `_sum` / `_count` triple over the fixed microsecond bounds in
// common/metrics.h. Every family carries `# HELP` and `# TYPE` lines.

#ifndef NEPTUNE_OBS_PROMETHEUS_H_
#define NEPTUNE_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "common/metrics.h"

namespace neptune {
namespace obs {

// "repl.apply_lag_us" -> "repl_apply_lag_us". Any character outside
// the Prometheus name alphabet becomes '_'; a leading digit gains a
// '_' prefix.
std::string PrometheusName(std::string_view name);

// Escapes '\' and '\n' for a HELP line per the exposition format.
std::string EscapeHelpText(std::string_view text);

// Renders a full snapshot. Counter families first, then gauges, then
// histograms, each alphabetical (the snapshot maps are ordered), so
// the output is deterministic — the golden test depends on that.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace neptune

#endif  // NEPTUNE_OBS_PROMETHEUS_H_

// Windowed rates over the cumulative metrics registry. Every Neptune
// metric is monotonic (counters) or instantaneous (gauges); operators
// and the router tier need *rates* — ops/s over the last second, p99
// over the last ten. MetricsWindow keeps a fixed ring of timestamped
// registry snapshots (one per sampler tick, default 1s, ~61 slots so a
// 60s window always spans) and answers delta queries: counters and
// histogram buckets subtracted between the newest sample and the
// newest sample at least `window` older, gauges passed through at
// their latest value.
//
// All timestamps come from a TimeSource, never the OS clock, so the
// deterministic simulation can drive the window from SimClock: a sim
// scenario calls SampleNow(clock) from virtual-clock events instead of
// starting the sampler thread.

#ifndef NEPTUNE_OBS_WINDOW_H_
#define NEPTUNE_OBS_WINDOW_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/metrics.h"

namespace neptune {
namespace obs {

class MetricsWindow {
 public:
  // One more than the longest supported window in ticks, so a full
  // 60-tick span survives ring wraparound.
  static constexpr size_t kDefaultCapacity = 61;

  explicit MetricsWindow(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // The process-wide window the kGetServerStatisticsDelta wire op
  // reads. Fed by whatever sampler the host process starts.
  static MetricsWindow& Instance();

  // Snapshots the registry, stamped with time->NowMicros().
  void SampleNow(TimeSource* time);
  // Injects a pre-built sample (tests; custom registries).
  void AddSample(uint64_t at_us, MetricsSnapshot snapshot);

  size_t sample_count() const;

  // Computes newest-minus-oldest over at least `window_us`: counters
  // and histogram count/sum/buckets are subtracted (clamped at zero so
  // a test-reset registry cannot go negative); a histogram's `max`
  // carries the newest cumulative max, an upper bound for the window.
  // Gauges are the newest values. Returns false — and leaves outputs
  // zeroed — until two samples span a non-empty interval; if the ring
  // does not reach back `window_us` yet, the widest available span is
  // used and reported via `elapsed_us`.
  bool Delta(uint64_t window_us, MetricsSnapshot* out,
             uint64_t* elapsed_us) const;

  // Counter rate in events/sec over `window_us` (0.0 until spanned).
  double CounterRate(const std::string& name, uint64_t window_us) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  struct Sample {
    uint64_t at_us = 0;
    MetricsSnapshot snapshot;
  };
  std::deque<Sample> samples_;
};

// Feeds a MetricsWindow on a fixed cadence. Production servers run
// Start() (a background thread that paces itself with
// TimeSource::SleepMicros in short slices so Stop() stays prompt); the
// simulation never starts the thread and calls SampleOnce() from
// virtual-clock events instead.
class StatsSampler {
 public:
  struct Options {
    uint64_t interval_us = 1'000'000;
    // nullptr = the process-wide real clock.
    TimeSource* time_source = nullptr;
  };

  StatsSampler(MetricsWindow* window, Options options);
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  void Start();
  void Stop();
  // One tick: snapshot the registry into the window, stamped from the
  // time source.
  void SampleOnce() { window_->SampleNow(time_); }

 private:
  void Main();

  MetricsWindow* const window_;
  const Options options_;
  TimeSource* const time_;
  std::mutex mu_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace neptune

#endif  // NEPTUNE_OBS_WINDOW_H_

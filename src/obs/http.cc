#include "obs/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "obs/prometheus.h"

namespace neptune {
namespace obs {

namespace {

// One request's worth of header is all we ever buffer; more is abuse.
constexpr size_t kMaxHeaderBytes = 8192;

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void AppendNumber(std::string* out, const char* fmt, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out->append(buf);
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out.append("HTTP/1.1 ");
  out.append(std::to_string(code));
  out.push_back(' ');
  out.append(reason);
  out.append("\r\nContent-Type: ");
  out.append(content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace

std::string BuildStatusz(uint64_t uptime_us, const MetricsWindow* window,
                         const std::map<std::string, std::string>& extra) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  const int64_t role = registry.GetGauge("repl.role")->Value();
  const int64_t term = registry.GetGauge("repl.term")->Value();
  std::string out = "{\n";
  out += "  \"role\": \"";
  out += role == 1 ? "follower" : "primary";
  out += "\",\n";
  out += "  \"term\": " + std::to_string(term) + ",\n";
  out += "  \"uptime_s\": ";
  AppendNumber(&out, "%.1f", static_cast<double>(uptime_us) / 1e6);
  out += ",\n  \"repl\": {\"lag_bytes\": " +
         std::to_string(registry.GetGauge("repl.lag_bytes")->Value()) +
         ", \"follower_lag_bytes\": " +
         std::to_string(
             registry.GetGauge("repl.follower.lag_bytes")->Value()) +
         ", \"apply_lag_us\": " +
         std::to_string(registry.GetGauge("repl.apply_lag_us")->Value()) +
         "},\n";
  if (window != nullptr) {
    MetricsSnapshot delta;
    uint64_t elapsed = 0;
    uint64_t p99_10s = 0;
    if (window->Delta(10'000'000, &delta, &elapsed)) {
      auto it = delta.histograms.find("rpc.request_latency");
      if (it != delta.histograms.end()) {
        p99_10s = it->second.QuantileMicros(0.99);
      }
    }
    out += "  \"rates\": {\"rpc_requests_1s\": ";
    AppendNumber(&out, "%.1f", window->CounterRate("rpc.requests", 1'000'000));
    out += ", \"rpc_requests_10s\": ";
    AppendNumber(&out, "%.1f",
                 window->CounterRate("rpc.requests", 10'000'000));
    out += ", \"rpc_requests_60s\": ";
    AppendNumber(&out, "%.1f",
                 window->CounterRate("rpc.requests", 60'000'000));
    out += ", \"request_p99_us_10s\": " + std::to_string(p99_10s) + "},\n";
  }
  out += "  \"build\": {\"compiler\": \"" + JsonEscape(
#if defined(__VERSION__)
             __VERSION__
#else
             "unknown"
#endif
             ) +
         "\", \"cxx\": " + std::to_string(__cplusplus) + "}";
  for (const auto& [key, value] : extra) {
    out += ",\n  \"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
  }
  out += "\n}\n";
  return out;
}

// ------------------------------------------------------------- server

struct MetricsHttpServer::Conn {
  explicit Conn(int fd) : fd(fd) {}
  ~Conn() { ::close(fd); }
  const int fd;
  std::string in;
  std::string out;
  size_t out_off = 0;
  bool responded = false;
  bool want_write = false;
};

MetricsHttpServer::MetricsHttpServer(Options options)
    : options_(std::move(options)),
      time_(options_.time_source != nullptr ? options_.time_source
                                            : RealTimeSource()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Result<uint16_t> MetricsHttpServer::Start(uint16_t port) {
  if (thread_.joinable()) return port_;
  NEPTUNE_ASSIGN_OR_RETURN(listener_, rpc::Listener::Bind(port));
  NEPTUNE_RETURN_IF_ERROR(listener_->SetNonblocking());
  poller_ = rpc::Poller::Create();
  NEPTUNE_RETURN_IF_ERROR(poller_->Add(listener_->fd(), false));
  port_ = listener_->port();
  start_us_ = time_->NowMicros();
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Main(); });
  NEPTUNE_LOG(Info) << "event=metrics_listening addr=127.0.0.1:" << port_;
  return port_;
}

void MetricsHttpServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  conns_.clear();
  poller_.reset();
  listener_.reset();
}

std::string MetricsHttpServer::Respond(const std::string& method,
                                       const std::string& path) {
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "GET only\n");
  }
  if (path == "/metrics") {
    return HttpResponse(
        200, "OK", "text/plain; version=0.0.4; charset=utf-8",
        RenderPrometheus(MetricsRegistry::Instance().Snapshot()));
  }
  if (path == "/statusz") {
    return HttpResponse(200, "OK", "application/json",
                        BuildStatusz(time_->NowMicros() - start_us_,
                                     options_.window, options_.statusz_extra));
  }
  if (path == "/statsz") {
    return HttpResponse(200, "OK", "application/json",
                        MetricsRegistry::Instance().Snapshot().ToJson());
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "try /metrics, /statusz or /statsz\n");
}

bool MetricsHttpServer::OnReadable(Conn* conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    if (n == 0) return conn->responded && conn->out_off < conn->out.size();
    if (conn->responded) continue;  // drain anything after the request
    conn->in.append(buf, static_cast<size_t>(n));
    if (conn->in.size() > kMaxHeaderBytes) return false;
    const size_t header_end = conn->in.find("\r\n\r\n");
    if (header_end == std::string::npos) continue;
    // "GET /metrics HTTP/1.1" — method and path are all we route on.
    const size_t line_end = conn->in.find("\r\n");
    const std::string line = conn->in.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    conn->out = Respond(line.substr(0, sp1), path);
    conn->responded = true;
    conn->in.clear();
  }
}

bool MetricsHttpServer::FlushConn(Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          poller_->Update(conn->fd, true);
        }
        return true;
      }
      return false;
    }
    conn->out_off += static_cast<size_t>(n);
  }
  // Response fully written: every exchange is one-shot, so drop the
  // connection rather than waiting out a keep-alive.
  return !conn->responded;
}

void MetricsHttpServer::CloseConn(int fd) {
  poller_->Remove(fd);
  conns_.erase(fd);
}

void MetricsHttpServer::Main() {
  std::vector<rpc::Poller::Event> events;
  while (!stop_.load(std::memory_order_acquire)) {
    auto waited = poller_->Wait(100, &events);
    if (!waited.ok()) continue;
    for (const rpc::Poller::Event& ev : events) {
      if (ev.fd == listener_->fd()) {
        for (;;) {
          auto accepted = listener_->AcceptFd();
          if (!accepted.ok()) break;
          auto conn = std::make_unique<Conn>(*accepted);
          if (!poller_->Add(conn->fd, false).ok()) continue;  // conn closes
          conns_[conn->fd] = std::move(conn);
        }
        continue;
      }
      auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      bool alive = true;
      if (ev.readable || ev.error) alive = OnReadable(conn);
      if (alive && (conn->responded || ev.writable)) alive = FlushConn(conn);
      if (!alive) CloseConn(ev.fd);
    }
  }
}

}  // namespace obs
}  // namespace neptune

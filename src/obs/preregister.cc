#include "obs/preregister.h"

#include "common/metrics.h"

namespace neptune {
namespace obs {

void PreregisterServerMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Instance();

  // Wire plane (PR 2/6): request flow and connection lifecycle.
  for (const char* name : {
           "rpc.requests",
           "rpc.bytes_in",
           "rpc.bytes_out",
           "rpc.connections.accepted",
           "rpc.server.pipelined",
           "rpc.server.batch_items",
           "rpc.server.drains",
           "server.shed",
           "server.connections.reaped",
           "server.workers.saturated",
       }) {
    registry.GetCounter(name);
  }
  for (const char* name : {
           "rpc.connections.active",
           "server.inflight",
           "server.sessions.active",
           "server.queue.depth",
           "server.outbuf_bytes",
           "server.ordered_backlog",
       }) {
    registry.GetGauge(name);
  }
  registry.GetHistogram("rpc.request_latency");
  registry.GetCounter("rpc.request_latency.count");
  registry.GetHistogram("server.loop.lag_us");

  // Replication tier (PR 8) — both roles expose the full taxonomy so a
  // fleet dashboard never keys on a missing family.
  for (const char* name : {
           "repl.primary.fetches",
           "repl.primary.bytes_shipped",
           "repl.primary.empty_polls",
           "repl.primary.snapshots_shipped",
           "repl.primary.snapshot_bytes",
           "repl.primary.stale_term_rejects",
           "repl.follower.chunks_applied",
           "repl.follower.bytes_applied",
           "repl.follower.records_applied",
           "repl.follower.corrupt_chunks",
           "repl.follower.snapshots_installed",
           "repl.follower.rolls",
           "repl.follower.resyncs",
           "repl.follower.forced_resyncs",
           "repl.follower.backoffs",
           "repl.follower.stale_primary_rejects",
           "repl.promotions",
           "repl.client.follower_reads",
           "repl.client.stale_follower",
           "repl.client.fallback_to_primary",
           "repl.client.follower_connect_failed",
           "repl.client.follower_open_failed",
       }) {
    registry.GetCounter(name);
  }
  for (const char* name : {
           "repl.lag_bytes",
           "repl.follower.lag_bytes",
           "repl.apply_lag_us",
           "repl.term",
           "repl.role",
       }) {
    registry.GetGauge(name);
  }
  registry.GetHistogram("repl.follower.apply_us");
  registry.GetHistogram("repl.follower.snapshot_install_us");
}

}  // namespace obs
}  // namespace neptune

// Pre-registers every lazily-created server-plane metric at zero, so
// a stats scrape (or /metrics) shows the full taxonomy from the first
// request — the PR 4 convention, extended to the PR 6 event loop, the
// PR 8 replication tier, and the observability plane itself. The
// engine-side taxonomy (ham.*, query.*, storage recovery) is
// pre-registered by the Ham constructor; this covers the rpc/server/
// repl families that exist even before an engine is constructed.
//
// scripts/check_metrics_format.py asserts the names listed here are
// present in a live /metrics scrape; keep the two in sync.

#ifndef NEPTUNE_OBS_PREREGISTER_H_
#define NEPTUNE_OBS_PREREGISTER_H_

namespace neptune {
namespace obs {

// Idempotent; cheap after the first call.
void PreregisterServerMetrics();

}  // namespace obs
}  // namespace neptune

#endif  // NEPTUNE_OBS_PREREGISTER_H_

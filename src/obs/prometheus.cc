#include "obs/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace neptune {
namespace obs {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendFamilyHeader(std::string* out, const std::string& family,
                        const std::string& original, const char* type) {
  out->append("# HELP ");
  out->append(family);
  out->append(" Neptune metric ");
  out->append(EscapeHelpText(original));
  out->append("\n# TYPE ");
  out->append(family);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out.push_back('_');
  }
  for (char c : name) {
    out.push_back(IsNameChar(c) ? c : '_');
  }
  return out;
}

std::string EscapeHelpText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = PrometheusName(name) + "_total";
    AppendFamilyHeader(&out, family, name, "counter");
    out.append(family);
    out.push_back(' ');
    AppendU64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string family = PrometheusName(name);
    AppendFamilyHeader(&out, family, name, "gauge");
    out.append(family);
    out.push_back(' ');
    AppendI64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string family = PrometheusName(name);
    AppendFamilyHeader(&out, family, name, "histogram");
    uint64_t cumulative = 0;
    const size_t buckets = hist.buckets.size();
    for (size_t i = 0; i < buckets; ++i) {
      cumulative += hist.buckets[i];
      out.append(family);
      out.append("_bucket{le=\"");
      if (i < Histogram::kNumBuckets - 1 && i < buckets - 1) {
        AppendU64(&out, Histogram::kBucketBounds[i]);
      } else {
        out.append("+Inf");
      }
      out.append("\"} ");
      AppendU64(&out, cumulative);
      out.push_back('\n');
    }
    if (buckets == 0) {
      // A histogram snapshot always carries its bucket vector, but an
      // empty one (e.g. a default-constructed delta) still needs the
      // mandatory +Inf bucket to be valid exposition.
      out.append(family);
      out.append("_bucket{le=\"+Inf\"} ");
      AppendU64(&out, hist.count);
      out.push_back('\n');
    }
    out.append(family);
    out.append("_sum ");
    AppendU64(&out, hist.sum);
    out.push_back('\n');
    out.append(family);
    out.append("_count ");
    AppendU64(&out, hist.count);
    out.push_back('\n');
  }
  return out;
}

}  // namespace obs
}  // namespace neptune

// neptune_server: the client/server deployment of the paper —
// "Neptune has a central server which is accessible over a local area
// network from a variety of workstations."
//
// Modes:
//   ./neptune_server serve <data-dir> [port] [stats-interval-sec]
//                    [txn-lease-ms] [idle-timeout-ms]
//                    [trace-sample-n] [trace-slow-us]
//                    [--io-threads=N] [--workers=N]
//       Runs a HAM server (port 0 = pick one) until killed. A nonzero
//       stats interval logs a one-line metrics summary periodically.
//       txn-lease-ms > 0 arms the transaction-lease watchdog (silent
//       transactions are aborted and their writer slot reclaimed);
//       idle-timeout-ms > 0 reaps connections that go quiet;
//       trace-sample-n > 0 records 1-in-N request traces (1 = all,
//       see `neptune_ctl trace`); trace-slow-us > 0 always logs and
//       keeps spans slower than that many microseconds.
//       --io-threads / --workers size the event loop and the request
//       worker pool (defaults: 1 IO thread, 4 workers).
//       --metrics-port=N opens the observability plane on
//       127.0.0.1:N — GET /metrics (Prometheus), /statusz (JSON
//       health), /statsz (full registry) — and starts the 1s stats
//       sampler that powers windowed rates (and `neptune_ctl top`).
//   ./neptune_server follow <data-dir> <port> <primary-host:port>
//                    <primary-root> [poll-wait-ms] [trace-sample-n]
//                    [--metrics-port=N]
//       Runs a read-only follower: tails the primary's WAL into
//       <data-dir> (snapshot bootstrap + per-commit shipping) and
//       serves idempotent reads. Writes are rejected with kReadOnly.
//       `neptune_ctl promote <host:port>` turns it into a primary.
//   ./neptune_server demo [data-dir]
//       Starts an in-process server on an ephemeral port, connects a
//       RemoteHam client over real TCP, and runs a workstation session
//       against it — the zero-setup way to see the RPC layer work.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "ham/ham.h"
#include "obs/http.h"
#include "obs/window.h"
#include "rpc/remote_ham.h"
#include "rpc/replicator.h"
#include "rpc/server.h"

using neptune::Env;
using neptune::LogLevel;
using neptune::ham::Ham;
using neptune::ham::HamOptions;
using neptune::ham::LinkPt;
using neptune::rpc::RemoteHam;
using neptune::rpc::Server;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    auto _s = (expr);                                         \
    if (!_s.ok()) {                                           \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _s.ToString().c_str());          \
      return 1;                                               \
    }                                                         \
  } while (0)

namespace {

// Starts the 1s registry sampler (windowed rates, `neptune_ctl top`)
// and the /metrics + /statusz HTTP listener when --metrics-port was
// given. Both live for the rest of the process (serve/follow modes
// only exit via signal).
int StartObservability(int metrics_port, uint16_t rpc_port,
                       const std::string& dir, const char* mode) {
  if (metrics_port < 0) return 0;
  auto* sampler = new neptune::obs::StatsSampler(
      &neptune::obs::MetricsWindow::Instance(), {});
  sampler->Start();
  neptune::obs::MetricsHttpServer::Options http_options;
  http_options.window = &neptune::obs::MetricsWindow::Instance();
  http_options.statusz_extra = {
      {"mode", mode},
      {"rpc_port", std::to_string(rpc_port)},
      {"data_dir", dir},
  };
  auto* http = new neptune::obs::MetricsHttpServer(std::move(http_options));
  auto bound = http->Start(static_cast<uint16_t>(metrics_port));
  if (!bound.ok()) {
    std::fprintf(stderr, "cannot start metrics listener: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }
  std::printf("metrics on http://127.0.0.1:%u/metrics (also /statusz)\n",
              *bound);
  return 0;
}

int RunServe(const std::string& dir, uint16_t port, unsigned stats_interval,
             unsigned txn_lease_ms, unsigned idle_timeout_ms,
             unsigned trace_sample_n, unsigned trace_slow_us, int io_threads,
             int workers, int metrics_port) {
  neptune::SetLogLevel(LogLevel::kInfo);
  Env::Default()->CreateDir(dir);
  HamOptions ham_options;
  ham_options.txn_lease_ms = txn_lease_ms;
  ham_options.trace_sample_n = trace_sample_n;
  ham_options.trace_slow_us = trace_slow_us;
  Ham ham(Env::Default(), ham_options);
  Server::Options server_options;
  server_options.idle_timeout_ms = static_cast<int>(idle_timeout_ms);
  if (io_threads > 0) server_options.io_threads = io_threads;
  if (workers > 0) server_options.worker_threads = workers;
  Server server(&ham, server_options);
  auto bound = server.Start(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "cannot start: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }
  std::printf("neptune server on 127.0.0.1:%u, data under %s\n", *bound,
              dir.c_str());
  if (StartObservability(metrics_port, *bound, dir, "serve") != 0) return 1;
  if (txn_lease_ms > 0) {
    std::printf("transaction lease: %ums\n", txn_lease_ms);
  }
  if (idle_timeout_ms > 0) {
    std::printf("idle connection timeout: %ums\n", idle_timeout_ms);
  }
  if (trace_sample_n > 0) {
    std::printf("tracing: 1 in %u requests\n", trace_sample_n);
  }
  if (trace_slow_us > 0) {
    std::printf("slow-op threshold: %uus\n", trace_slow_us);
  }
  std::printf("press Ctrl-C to stop\n");
  if (stats_interval > 0) {
    // Detached: the process only exits via signal anyway.
    std::thread([stats_interval] {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::seconds(stats_interval));
        NEPTUNE_LOG(Info)
            << neptune::MetricsRegistry::Instance().Snapshot().ToLogLine();
      }
    }).detach();
  }
  for (;;) pause();
}

int RunFollow(const std::string& dir, uint16_t port,
              const std::string& primary_host, uint16_t primary_port,
              const std::string& primary_root, unsigned poll_wait_ms,
              unsigned trace_sample_n, int metrics_port) {
  neptune::SetLogLevel(LogLevel::kInfo);
  Env::Default()->CreateDir(dir);
  HamOptions ham_options;
  ham_options.follower_mode = true;
  ham_options.trace_sample_n = trace_sample_n;
  Ham ham(Env::Default(), ham_options);
  Server server(&ham);
  auto bound = server.Start(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "cannot start: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }
  auto primary = RemoteHam::Connect(primary_host, primary_port);
  if (!primary.ok()) {
    std::fprintf(stderr, "cannot reach primary %s:%u: %s\n",
                 primary_host.c_str(), primary_port,
                 primary.status().ToString().c_str());
    return 1;
  }
  neptune::rpc::Replicator::Options repl_options;
  repl_options.primary_root = primary_root;
  repl_options.local_root = dir;
  if (poll_wait_ms > 0) repl_options.poll_wait_ms = poll_wait_ms;
  neptune::rpc::Replicator replicator(&ham, primary->get(), repl_options);
  replicator.Start();
  if (StartObservability(metrics_port, *bound, dir, "follow") != 0) return 1;
  std::printf("neptune follower on 127.0.0.1:%u, replicating %s:%u%s%s "
              "into %s\n",
              *bound, primary_host.c_str(), primary_port,
              primary_root.empty() ? "" : " root ", primary_root.c_str(),
              dir.c_str());
  std::printf("press Ctrl-C to stop; promote with: neptune_ctl promote "
              "127.0.0.1:%u\n",
              *bound);
  for (;;) pause();
}

int RunDemo(const std::string& dir) {
  Env* env = Env::Default();
  env->RemoveDirRecursive(dir);
  env->CreateDir(dir);

  // The "central server".
  Ham engine(env, HamOptions());
  Server server(&engine);
  auto port = server.Start(0);
  CHECK_OK(port.status());
  std::printf("server up on 127.0.0.1:%u\n", *port);

  // A "workstation" connects over TCP.
  auto client = RemoteHam::Connect("localhost", *port);
  CHECK_OK(client.status());
  std::printf("workstation connected (ping ok)\n");

  const std::string graph_dir = dir + "/project-graph";
  auto created = (*client)->CreateGraph(graph_dir, 0755);
  CHECK_OK(created.status());
  auto ctx = (*client)->OpenGraph(created->project, "localhost", graph_dir);
  CHECK_OK(ctx.status());

  // A transaction spanning several primitive operations, all remote.
  CHECK_OK((*client)->BeginTransaction(*ctx));
  auto a = (*client)->AddNode(*ctx, true);
  auto b = (*client)->AddNode(*ctx, true);
  CHECK_OK(a.status());
  CHECK_OK(b.status());
  CHECK_OK((*client)->ModifyNode(*ctx, a->node, a->creation_time,
                                 "design data on the server\n", {},
                                 "initial"));
  CHECK_OK((*client)->ModifyNode(*ctx, b->node, b->creation_time,
                                 "a review comment\n", {}, "initial"));
  auto link = (*client)->AddLink(*ctx, LinkPt{a->node, 7, 0, true},
                                 LinkPt{b->node, 0, 0, true});
  CHECK_OK(link.status());
  CHECK_OK((*client)->CommitTransaction(*ctx));
  std::printf("committed a 5-operation transaction over the wire\n");

  // A second workstation sees the committed state immediately.
  auto client2 = RemoteHam::Connect("localhost", *port);
  CHECK_OK(client2.status());
  auto ctx2 = (*client2)->OpenGraph(created->project, "localhost", graph_dir);
  CHECK_OK(ctx2.status());
  auto seen = (*client2)->OpenNode(*ctx2, a->node, 0, {});
  CHECK_OK(seen.status());
  std::printf("second workstation reads: %s", seen->contents.c_str());
  std::printf("  ...with %zu attachment(s)\n", seen->attachments.size());

  auto stats = (*client2)->GetStats(*ctx2);
  CHECK_OK(stats.status());
  std::printf("server-side stats: %llu nodes, %llu links\n",
              (unsigned long long)stats->node_count,
              (unsigned long long)stats->link_count);

  CHECK_OK((*client2)->CloseGraph(*ctx2));
  CHECK_OK((*client)->CloseGraph(*ctx));
  CHECK_OK((*client)->DestroyGraph(created->project, graph_dir));
  server.Stop();
  env->RemoveDirRecursive(dir);
  std::printf("demo complete\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Event-loop sizing flags may appear anywhere; the positional args
  // keep their historical order, so existing invocations still work.
  int io_threads = 0;
  int workers = 0;
  int metrics_port = -1;  // -1 = observability plane off
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--io-threads=", 0) == 0) {
      io_threads = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      metrics_port = std::atoi(arg.c_str() + 15);
    } else {
      args.push_back(argv[i]);
    }
  }
  const int nargs = static_cast<int>(args.size());
  const std::string mode = nargs > 1 ? args[1] : "demo";
  if (mode == "serve") {
    if (nargs < 3) {
      std::fprintf(stderr,
                   "usage: %s serve <data-dir> [port] [stats-interval-sec]"
                   " [txn-lease-ms] [idle-timeout-ms]"
                   " [trace-sample-n] [trace-slow-us]"
                   " [--io-threads=N] [--workers=N] [--metrics-port=N]\n",
                   args[0]);
      return 2;
    }
    const uint16_t port =
        nargs > 3 ? static_cast<uint16_t>(std::atoi(args[3])) : 0;
    const unsigned stats_interval =
        nargs > 4 ? static_cast<unsigned>(std::atoi(args[4])) : 0;
    const unsigned txn_lease_ms =
        nargs > 5 ? static_cast<unsigned>(std::atoi(args[5])) : 0;
    const unsigned idle_timeout_ms =
        nargs > 6 ? static_cast<unsigned>(std::atoi(args[6])) : 0;
    const unsigned trace_sample_n =
        nargs > 7 ? static_cast<unsigned>(std::atoi(args[7])) : 0;
    const unsigned trace_slow_us =
        nargs > 8 ? static_cast<unsigned>(std::atoi(args[8])) : 0;
    return RunServe(args[2], port, stats_interval, txn_lease_ms,
                    idle_timeout_ms, trace_sample_n, trace_slow_us, io_threads,
                    workers, metrics_port);
  }
  if (mode == "follow") {
    if (nargs < 6) {
      std::fprintf(stderr,
                   "usage: %s follow <data-dir> <port> <primary-host:port>"
                   " <primary-root> [poll-wait-ms] [trace-sample-n]"
                   " [--metrics-port=N]\n",
                   args[0]);
      return 2;
    }
    const std::string target = args[4];
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "primary must be host:port, got %s\n",
                   target.c_str());
      return 2;
    }
    const std::string primary_host = target.substr(0, colon);
    const uint16_t primary_port = static_cast<uint16_t>(
        std::strtoul(target.c_str() + colon + 1, nullptr, 10));
    const uint16_t port = static_cast<uint16_t>(std::atoi(args[3]));
    const unsigned poll_wait_ms =
        nargs > 6 ? static_cast<unsigned>(std::atoi(args[6])) : 0;
    const unsigned trace_sample_n =
        nargs > 7 ? static_cast<unsigned>(std::atoi(args[7])) : 0;
    return RunFollow(args[2], port, primary_host, primary_port, args[5],
                     poll_wait_ms, trace_sample_n, metrics_port);
  }
  if (mode == "demo") {
    return RunDemo(nargs > 2 ? args[2] : "/tmp/neptune_server_demo");
  }
  std::fprintf(stderr,
               "usage: %s serve <data-dir> [port] [stats-interval-sec]"
               " [txn-lease-ms] [idle-timeout-ms]"
               " [trace-sample-n] [trace-slow-us]"
               " [--io-threads=N] [--workers=N] [--metrics-port=N]"
               " | follow <data-dir> <port> <primary-host:port>"
               " <primary-root> [poll-wait-ms] [--metrics-port=N]"
               " | demo [dir]\n",
               argv[0]);
  return 2;
}

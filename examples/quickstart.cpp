// Quickstart: the HAM in ten minutes.
//
// Creates a graph database, adds versioned nodes and links, attaches
// attributes, runs the two query mechanisms, and time-travels through
// the version history — the core loop of every Neptune application.
//
//   ./quickstart [directory]   (default: /tmp/neptune_quickstart)

#include <cstdio>
#include <string>

#include "ham/ham.h"

using neptune::Env;
using neptune::ham::Context;
using neptune::ham::Ham;
using neptune::ham::HamOptions;
using neptune::ham::LinkPt;
using neptune::ham::Time;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    auto _s = (expr);                                             \
    if (!_s.ok()) {                                               \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,         \
                   __LINE__, _s.ToString().c_str());              \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/neptune_quickstart";
  Env* env = Env::Default();
  env->RemoveDirRecursive(dir);  // fresh demo

  Ham ham(env, HamOptions());

  // 1. Create and open a graph database.
  auto created = ham.CreateGraph(dir, 0755);
  CHECK_OK(created.status());
  std::printf("created graph, project id %llu\n",
              (unsigned long long)created->project);
  auto ctx = ham.OpenGraph(created->project, "local", dir);
  CHECK_OK(ctx.status());

  // 2. Two archive nodes with contents.
  auto a = ham.AddNode(*ctx, /*keep_history=*/true);
  CHECK_OK(a.status());
  CHECK_OK(ham.ModifyNode(*ctx, a->node, a->creation_time,
                          "Chapter One\nIt was a dark and stormy night.\n",
                          {}, "first draft"));
  auto b = ham.AddNode(*ctx, true);
  CHECK_OK(b.status());
  CHECK_OK(ham.ModifyNode(*ctx, b->node, b->creation_time,
                          "A note about the opening line.\n", {},
                          "annotation"));

  // 3. A link from a position inside node a to node b.
  auto link = ham.AddLink(*ctx, LinkPt{a->node, 12, 0, true},
                          LinkPt{b->node, 0, 0, true});
  CHECK_OK(link.status());

  // 4. Attributes give the graph its semantics.
  auto document = ham.GetAttributeIndex(*ctx, "document");
  auto relation = ham.GetAttributeIndex(*ctx, "relation");
  CHECK_OK(document.status());
  CHECK_OK(relation.status());
  CHECK_OK(ham.SetNodeAttributeValue(*ctx, a->node, *document, "novel"));
  CHECK_OK(ham.SetNodeAttributeValue(*ctx, b->node, *document, "notes"));
  CHECK_OK(ham.SetLinkAttributeValue(*ctx, link->link, *relation,
                                     "annotates"));

  // 5. Queries: associative (getGraphQuery) and structural
  //    (linearizeGraph), both predicate-filtered.
  auto novels = ham.GetGraphQuery(*ctx, 0, "document = novel", "", {}, {});
  CHECK_OK(novels.status());
  std::printf("nodes with document=novel: %zu\n", novels->nodes.size());
  auto reachable = ham.LinearizeGraph(*ctx, a->node, 0, "", "", {}, {});
  CHECK_OK(reachable.status());
  std::printf("nodes reachable from the chapter: %zu\n",
              reachable->nodes.size());

  // 6. Versioning: edit the chapter, then read both versions.
  auto ts = ham.GetNodeTimeStamp(*ctx, a->node);
  CHECK_OK(ts.status());
  const Time draft_time = *ts;
  CHECK_OK(ham.ModifyNode(*ctx, a->node, draft_time,
                          "Chapter One\nCall me Ishmael.\n",
                          {{link->link, true, 12}}, "second draft"));
  auto now = ham.OpenNode(*ctx, a->node, 0, {});
  auto then = ham.OpenNode(*ctx, a->node, draft_time, {});
  CHECK_OK(now.status());
  CHECK_OK(then.status());
  std::printf("current second line : %s", now->contents.c_str() + 12);
  std::printf("draft   second line : %s", then->contents.c_str() + 12);

  // 7. Differences between the two versions.
  auto current_ts = ham.GetNodeTimeStamp(*ctx, a->node);
  CHECK_OK(current_ts.status());
  auto diffs = ham.GetNodeDifferences(*ctx, a->node, draft_time, *current_ts);
  CHECK_OK(diffs.status());
  std::printf("differences between drafts: %zu hunk(s)\n", diffs->size());

  // 8. Everything committed so far survives a process restart; the
  //    graph can simply be reopened (see the recovery tests). Clean up.
  CHECK_OK(ham.CloseGraph(*ctx));
  CHECK_OK(ham.DestroyGraph(created->project, dir));
  std::printf("quickstart complete\n");
  return 0;
}

// paper_browser: reproduces the paper's three figures with this very
// paper stored as a hyperdocument (exactly the scenario of Figures
// 1–3, which show Neptune's browsers viewing the SIGMOD paper itself).
//
//   Figure 1  graph browser     — pictorial sub-graph with visibility
//                                 predicates
//   Figure 2  document browser  — four node-list panes over
//                                 getGraphQuery + linearizeGraph, with
//                                 a node browser pane below
//   Figure 3  node browser      — contents with inline link icons,
//                                 plus the node-differences browser
//
//   ./paper_browser [directory]

#include <cstdio>
#include <string>

#include "app/browsers/document_browser.h"
#include "app/browsers/graph_browser.h"
#include "app/browsers/inspect_browsers.h"
#include "app/browsers/node_browser.h"
#include "app/document.h"
#include "ham/ham.h"

using neptune::Env;
using neptune::ham::Ham;
using neptune::ham::HamOptions;
using namespace neptune::app;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    auto _s = (expr);                                         \
    if (!_s.ok()) {                                           \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _s.ToString().c_str());          \
      return 1;                                               \
    }                                                         \
  } while (0)

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/neptune_paper";
  Env* env = Env::Default();
  env->RemoveDirRecursive(dir);
  Ham ham(env, HamOptions());

  auto created = ham.CreateGraph(dir, 0755);
  CHECK_OK(created.status());
  auto ctx = ham.OpenGraph(created->project, "local", dir);
  CHECK_OK(ctx.status());

  DocumentModel doc(&ham, *ctx);
  CHECK_OK(doc.Init());

  // ---- Build the paper as a hyperdocument --------------------------
  auto root = doc.CreateDocument("sigmod-paper", "SIGMOD Paper");
  CHECK_OK(root.status());
  auto intro = doc.AddSection(
      *root, "sigmod-paper", "Introduction",
      "Traditional databases have certain weaknesses when it comes\n"
      "to their use in Computer Aided Design (CAD) systems.\n",
      0);
  auto hypertext = doc.AddSection(
      *root, "sigmod-paper", "Hypertext",
      "Hypertext in its essence is non-linear or non-sequential text.\n"
      "Documents consist of a collection of nodes connected by links.\n",
      10);
  auto existing = doc.AddSection(
      *hypertext, "sigmod-paper", "Existing Systems",
      "Memex, Augment/NLS, Xanadu, FRESS, Notecards, ZOG -- and Neptune.\n",
      0);
  auto overview = doc.AddSection(
      *root, "sigmod-paper", "Neptune Overview",
      "Neptune is designed as a layered architecture. The bottom level\n"
      "is a transaction-based server named the Hypertext Abstract\n"
      "Machine (HAM).\n",
      20);
  auto cad = doc.AddSection(
      *root, "sigmod-paper", "Hypertext-based CAD",
      "For a CASE application, all documentation, source and object\n"
      "code are stored in hyperdocuments.\n",
      30);
  CHECK_OK(intro.status());
  CHECK_OK(existing.status());
  CHECK_OK(overview.status());
  CHECK_OK(cad.status());
  // A cross-reference and an annotation, as real documents have.
  CHECK_OK(doc.AddReference(*cad, 10, *overview).status());
  CHECK_OK(doc.Annotate(*intro, 24, "cite Katz & Lehman here").status());

  // ---- Figure 1: the graph browser ---------------------------------
  std::printf("================ Figure 1: Graph Browser ================\n");
  GraphBrowser graph_browser(&ham, *ctx);
  GraphBrowserOptions graph_options;
  graph_options.node_predicate = "document = sigmod-paper";
  auto fig1 = graph_browser.Render(graph_options);
  CHECK_OK(fig1.status());
  std::fputs(fig1->c_str(), stdout);

  // ---- Figure 2: the document browser ------------------------------
  std::printf("\n=============== Figure 2: Document Browser ==============\n");
  DocumentBrowser document_browser(&ham, *ctx);
  DocumentBrowserOptions doc_options;
  doc_options.query_predicate = "document = sigmod-paper & !exists parent";
  // The root is simply the first query hit; drill into it, then into
  // its second child ("Hypertext").
  doc_options.query_predicate = "icon = 'SIGMOD Paper'";
  doc_options.selection = {0, 1};
  auto fig2 = document_browser.Render(doc_options);
  CHECK_OK(fig2.status());
  std::fputs(fig2->c_str(), stdout);

  // ---- Figure 3: the node browser + differences browser ------------
  std::printf("\n================ Figure 3: Node Browser =================\n");
  NodeBrowser node_browser(&ham, *ctx);
  auto fig3 = node_browser.Render(*intro, 0);
  CHECK_OK(fig3.status());
  std::fputs(fig3->c_str(), stdout);

  std::printf("\n-------- node differences browser (two versions) --------\n");
  auto before = ham.GetNodeTimeStamp(*ctx, *hypertext);
  CHECK_OK(before.status());
  CHECK_OK(doc.EditSection(
      *hypertext,
      "Hypertext in its essence is non-linear or non-sequential text.\n"
      "The nodes of a hyperdocument are not restricted to be text.\n",
      "revise for camera-ready"));
  auto after = ham.GetNodeTimeStamp(*ctx, *hypertext);
  CHECK_OK(after.status());
  NodeDifferencesBrowser diff_browser(&ham, *ctx);
  auto diff = diff_browser.Render(*hypertext, *before, *after);
  CHECK_OK(diff.status());
  std::fputs(diff->c_str(), stdout);

  // ---- The supporting browsers the paper lists ----------------------
  std::printf("\n---------------- version browser ------------------------\n");
  VersionBrowser version_browser(&ham, *ctx);
  auto versions = version_browser.Render(*hypertext);
  CHECK_OK(versions.status());
  std::fputs(versions->c_str(), stdout);

  std::printf("\n---------------- attribute browser ----------------------\n");
  AttributeBrowser attribute_browser(&ham, *ctx);
  auto attrs = attribute_browser.RenderGraph(0);
  CHECK_OK(attrs.status());
  std::fputs(attrs->c_str(), stdout);

  // ---- Hardcopy extraction via linearizeGraph ----------------------
  std::printf("\n---------------- hardcopy extraction --------------------\n");
  auto hardcopy = doc.ExtractHardcopy(*root, 0);
  CHECK_OK(hardcopy.status());
  std::fputs(hardcopy->c_str(), stdout);

  CHECK_OK(ham.CloseGraph(*ctx));
  CHECK_OK(ham.DestroyGraph(created->project, dir));
  return 0;
}

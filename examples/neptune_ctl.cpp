// neptune_ctl: a command-line tool over a Neptune graph database —
// the kind of utility a team adopting the HAM actually drives it with.
//
//   neptune_ctl create <dir>
//   neptune_ctl stats <dir | host:port> [--json]
//   neptune_ctl top <host:port> [host:port ...]
//                [--interval-ms <n>] [--iterations <n>] [--window <s>]
//   neptune_ctl trace <host:port> [--chrome <out.json>]
//   neptune_ctl slowops <host:port>
//   neptune_ctl workload <host:port> <server-side-dir>
//                [--deadline-ms <n>] [--retries <n>] [--clients <n>]
//   neptune_ctl recover <dir> [--json]
//   neptune_ctl promote <dir | host:port>
//   neptune_ctl repl <host:port> <server-side-dir>
//   neptune_ctl ls <dir> [node-predicate]
//   neptune_ctl query <dir> <node-predicate> [--explain|--scan|--verify]
//   neptune_ctl query <host:port> <server-side-dir> <node-predicate>
//                [--explain|--scan|--verify]
//   neptune_ctl cat <dir> <node> [time]
//   neptune_ctl new <dir> [title]            (contents from stdin)
//   neptune_ctl put <dir> <node>             (contents from stdin)
//   neptune_ctl link <dir> <from> <pos> <to> [relation]
//   neptune_ctl versions <dir> <node>
//   neptune_ctl diff <dir> <node> <t1> <t2>
//   neptune_ctl fsck <dir>
//   neptune_ctl prune <dir> <before-time>
//   neptune_ctl export <dir>                 (NIF1 to stdout)
//   neptune_ctl import <dir>                 (NIF1 from stdin)
//   neptune_ctl destroy <dir>
//
// All commands address the graph by directory; the ProjectId is read
// from the PROJECT file. When the target is spelled host:port instead
// of a directory, `stats` asks a running neptune_server for its
// process-wide metrics, `trace` fetches its recent-trace ring (and can
// export it as Chrome about:tracing JSON), `slowops` dumps its slow-op
// ring, and `workload` drives a short burst of remote traffic against
// it (so a fresh server has nonzero counters and traces to show).

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "app/document.h"
#include "app/interchange.h"
#include "common/trace.h"
#include "delta/text_diff.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "storage/durable_store.h"

using namespace neptune;

namespace {

[[noreturn]] void Die(const Status& status) {
  std::fprintf(stderr, "neptune_ctl: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) Die(status);
}

std::string ReadStdin() {
  return std::string(std::istreambuf_iterator<char>(std::cin),
                     std::istreambuf_iterator<char>());
}

// Opens the graph in `dir` using the PROJECT file's id.
ham::Context OpenByDir(ham::Ham* engine, const std::string& dir) {
  ham::ProjectId project =
      Unwrap(ham::Ham::ReadProjectId(Env::Default(), dir));
  return Unwrap(engine->OpenGraph(project, "local", dir));
}

int Usage() {
  std::fprintf(stderr,
               "usage: neptune_ctl "
               "create|stats|recover|ls|query|cat|new|put|link|versions|diff|"
               "fsck|prune|export|import|destroy <dir> [args...]\n"
               "       neptune_ctl query <dir | host:port server-side-dir> "
               "<node-predicate> [--explain] [--scan] [--verify]\n"
               "       neptune_ctl stats <host:port> [--json]\n"
               "       neptune_ctl top <host:port> [host:port ...]"
               " [--interval-ms <n>] [--iterations <n>] [--window <s>]\n"
               "       neptune_ctl trace <host:port> [--chrome <out.json>]\n"
               "       neptune_ctl slowops <host:port>\n"
               "       neptune_ctl workload <host:port> <server-side-dir>"
               " [--deadline-ms <n>] [--retries <n>] [--clients <n>]"
               " [--pipeline <0|1>]\n"
               "       neptune_ctl recover <dir> [--json]\n"
               "       neptune_ctl promote <dir | host:port>\n"
               "       neptune_ctl repl <host:port> <server-side-dir>\n");
  return 2;
}

// Splits "host:port"; returns false if `target` has no colon (it is a
// directory, not a server address).
bool ParseHostPort(const std::string& target, std::string* host,
                   uint16_t* port) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) return false;
  *host = target.substr(0, colon);
  *port = static_cast<uint16_t>(
      std::strtoul(target.c_str() + colon + 1, nullptr, 10));
  return true;
}

std::unique_ptr<rpc::RemoteHam> ConnectTo(const std::string& host,
                                          uint16_t port) {
  return Unwrap(rpc::RemoteHam::Connect(host, port));
}

// Runs crash recovery on `dir` and reports what it found, then
// cross-checks the recovered graph with the fsck pass. This is the
// operator's "is my database OK after the machine died?" command.
// With --json the whole outcome is one machine-readable object on
// stdout (for CI artifact collection); problems still exit nonzero.
int Recover(const std::string& dir, bool json) {
  RecoveredState state;
  {
    auto store = DurableStore::Open(Env::Default(), dir, &state);
    if (!store.ok()) Die(store.status());
  }
  if (!json) {
    std::printf("%s\n", state.report.ToString().c_str());
    std::printf("snapshot    : %zu bytes (epoch %" PRIu64 ")\n",
                state.snapshot.size(), state.report.snapshot_epoch);
    std::printf("wal records : %zu replayed\n", state.wal_records.size());
  }

  ham::Ham engine(Env::Default(), ham::HamOptions());
  ham::Context ctx = OpenByDir(&engine, dir);
  auto problems = Unwrap(engine.VerifyGraph(ctx));
  if (!json) {
    for (const auto& problem : problems) {
      std::printf("PROBLEM: %s\n", problem.c_str());
    }
  }
  auto stats = Unwrap(engine.GetStats(ctx));
  Check(engine.CloseGraph(ctx));
  if (json) {
    std::printf("{\"report\": %s, \"snapshot_bytes\": %zu, "
                "\"wal_records\": %zu, \"nodes\": %" PRIu64
                ", \"links\": %" PRIu64 ", \"fsck_problems\": %zu, "
                "\"consistent\": %s}\n",
                state.report.ToJson().c_str(), state.snapshot.size(),
                state.wal_records.size(), stats.node_count, stats.link_count,
                problems.size(), problems.empty() ? "true" : "false");
    return problems.empty() ? 0 : 1;
  }
  std::printf("graph       : %" PRIu64 " nodes, %" PRIu64
              " links, %s\n",
              stats.node_count, stats.link_count,
              problems.empty() ? "consistent" : "INCONSISTENT");
  if (!problems.empty()) return 1;
  std::printf(state.report.Clean() ? "store was clean\n"
                                   : "store recovered\n");
  return 0;
}

// Offline promotion: flip a follower store's durable fencing role to
// primary and bump the term, so a deposed primary's late appends are
// rejected. The online path (`promote <host:port>`) does the same
// through a running server and also lifts its read-only mode.
int PromoteDir(const std::string& dir) {
  RecoveredState state;
  auto store = DurableStore::Open(Env::Default(), dir, &state);
  if (!store.ok()) Die(store.status());
  ReplRole role = (*store)->repl_role();
  if (!role.follower) {
    std::printf("%s is already a primary (term %" PRIu64 ")\n", dir.c_str(),
                role.term);
    return 0;
  }
  role.term += 1;
  role.follower = false;
  Check((*store)->SetReplRole(role));
  std::printf("promoted %s to primary, fencing term %" PRIu64 "\n",
              dir.c_str(), role.term);
  return 0;
}

// Remote `stats`: the server's process-wide metrics snapshot, as a
// human-readable table or (--json) one machine-readable object.
int RemoteStats(const std::string& host, uint16_t port, bool json) {
  auto client = ConnectTo(host, port);
  MetricsSnapshot snapshot = Unwrap(client->GetServerStatistics());
  if (json) {
    std::printf("%s\n", snapshot.ToJson().c_str());
  } else {
    std::fputs(snapshot.ToTable().c_str(), stdout);
  }
  return 0;
}

// Remote `trace`: the server's recent-trace ring. Default output is a
// per-trace span tree; --chrome <file> writes Chrome about:tracing
// JSON (chrome://tracing or https://ui.perfetto.dev) instead.
int RemoteTrace(const std::string& host, uint16_t port,
                const std::string& chrome_out) {
  auto client = ConnectTo(host, port);
  std::vector<Trace> traces = Unwrap(client->GetRecentTraces());
  if (!chrome_out.empty()) {
    const std::string json = TracesToChromeJson(traces);
    std::FILE* f = std::fopen(chrome_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "neptune_ctl: cannot write %s\n",
                   chrome_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    size_t spans = 0;
    for (const auto& trace : traces) spans += trace.spans.size();
    std::printf("wrote %zu trace(s), %zu span(s) to %s\n", traces.size(),
                spans, chrome_out.c_str());
    return 0;
  }
  for (const auto& trace : traces) {
    std::printf("trace %016" PRIx64 " (%zu spans)\n", trace.trace_id,
                trace.spans.size());
    for (const auto& span : trace.spans) {
      std::printf("  [%016" PRIx64 " <- %016" PRIx64 "] %-28s %8" PRIu64
                  " us%s%s\n",
                  span.span_id, span.parent_id, span.name.c_str(),
                  span.duration_us, span.annotation.empty() ? "" : "  ",
                  span.annotation.c_str());
    }
  }
  std::printf("(%zu traces)\n", traces.size());
  return 0;
}

// Remote `slowops`: the server's slow-op ring — every span that
// overran trace_slow_us, kept even when its trace was not sampled.
int RemoteSlowOps(const std::string& host, uint16_t port) {
  auto client = ConnectTo(host, port);
  std::vector<Span> ops = Unwrap(client->GetSlowOps());
  for (const auto& span : ops) {
    std::printf("%-28s %8" PRIu64 " us  trace=%016" PRIx64
                " span=%016" PRIx64 "%s%s\n",
                span.name.c_str(), span.duration_us, span.trace_id,
                span.span_id, span.annotation.empty() ? "" : "  ",
                span.annotation.c_str());
  }
  std::printf("(%zu slow ops)\n", ops.size());
  return 0;
}

// ---- `top`: the live fleet view -------------------------------------
//
// One row per server, refreshed in place: role and fencing term,
// windowed ops/s and request p99 (from getServerStatisticsDelta, so
// the numbers are rates over the last --window seconds rather than
// process-lifetime averages), replication lag, and event-loop health.
// Servers running without a stats sampler still show role and gauges,
// with the rate columns dashed.

struct TopRow {
  std::string target;
  bool ok = false;
  std::string error;
  bool has_window = false;  // server runs a sampler (elapsed_us > 0)
  double elapsed_s = 0.0;
  MetricsSnapshot snap;  // windowed delta + newest gauges
};

int64_t GaugeOrZero(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0 : it->second;
}

uint64_t HistP99(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? 0 : it->second.QuantileMicros(0.99);
}

std::string FmtBytes(int64_t bytes) {
  char buf[32];
  if (bytes >= 10 * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fM", bytes / 1048576.0);
  } else if (bytes >= 10 * 1024) {
    std::snprintf(buf, sizeof buf, "%.0fK", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lld", (long long)bytes);
  }
  return buf;
}

std::string FmtUs(uint64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.1fs", us / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof buf, "%.1fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluus", (unsigned long long)us);
  }
  return buf;
}

// Polls one server. A fresh connection per refresh keeps the view
// honest across restarts and failovers; the deadline keeps one dead
// node from stalling the whole screen.
TopRow PollOne(const std::string& target, uint32_t window_s) {
  TopRow row;
  row.target = target;
  std::string host;
  uint16_t port = 0;
  ParseHostPort(target, &host, &port);
  rpc::RemoteHam::Options options;
  options.connect_timeout_ms = 2000;
  options.send_timeout_ms = 2000;
  options.recv_timeout_ms = 2000;
  auto client = rpc::RemoteHam::Connect(host, port, options);
  if (!client.ok()) {
    row.error = client.status().ToString();
    return row;
  }
  auto delta = (*client)->GetServerStatisticsDelta(window_s);
  if (!delta.ok()) {
    row.error = delta.status().ToString();
    return row;
  }
  if (delta->elapsed_us > 0) {
    row.has_window = true;
    row.elapsed_s = static_cast<double>(delta->elapsed_us) / 1e6;
    row.snap = std::move(delta->snapshot);
  } else {
    // No sampler on that server: gauges from the cumulative snapshot,
    // rates unavailable.
    auto full = (*client)->GetServerStatistics();
    if (!full.ok()) {
      row.error = full.status().ToString();
      return row;
    }
    row.snap = std::move(*full);
  }
  row.ok = true;
  return row;
}

int RunTop(const std::vector<std::string>& targets, unsigned interval_ms,
           long iterations, uint32_t window_s) {
  const bool tty = isatty(1) != 0;
  for (long iter = 0; iterations <= 0 || iter < iterations; ++iter) {
    if (iter > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::vector<TopRow> rows(targets.size());
    std::vector<std::thread> threads;
    threads.reserve(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      threads.emplace_back(
          [&rows, &targets, i, window_s] {
            rows[i] = PollOne(targets[i], window_s);
          });
    }
    for (auto& t : threads) t.join();

    if (tty) std::printf("\033[H\033[2J");
    std::printf("neptune top — %zu node(s), %us window\n\n", targets.size(),
                window_s);
    std::printf("%-22s %-9s %5s %9s %9s %9s %7s %9s %10s\n", "NODE", "ROLE",
                "TERM", "OPS/S", "P99", "LOOP-P99", "SHED/S", "LAG",
                "APPLY-LAG");
    for (const auto& row : rows) {
      if (!row.ok) {
        std::printf("%-22s DOWN  %s\n", row.target.c_str(),
                    row.error.c_str());
        continue;
      }
      const bool follower = GaugeOrZero(row.snap, "repl.role") == 1;
      const int64_t term = GaugeOrZero(row.snap, "repl.term");
      const int64_t lag_bytes =
          follower ? GaugeOrZero(row.snap, "repl.follower.lag_bytes")
                   : GaugeOrZero(row.snap, "repl.lag_bytes");
      char ops[32], shed[32];
      if (row.has_window && row.elapsed_s > 0) {
        std::snprintf(ops, sizeof ops, "%.1f",
                      row.snap.CounterValue("rpc.requests") / row.elapsed_s);
        std::snprintf(shed, sizeof shed, "%.1f",
                      row.snap.CounterValue("server.shed") / row.elapsed_s);
      } else {
        std::snprintf(ops, sizeof ops, "-");
        std::snprintf(shed, sizeof shed, "-");
      }
      std::printf("%-22s %-9s %5lld %9s %9s %9s %7s %9s %10s\n",
                  row.target.c_str(), follower ? "follower" : "primary",
                  (long long)term, ops,
                  FmtUs(HistP99(row.snap, "rpc.request_latency")).c_str(),
                  FmtUs(HistP99(row.snap, "server.loop.lag_us")).c_str(),
                  shed, FmtBytes(lag_bytes).c_str(),
                  follower
                      ? FmtUs(static_cast<uint64_t>(
                                  GaugeOrZero(row.snap, "repl.apply_lag_us")))
                            .c_str()
                      : "-");
    }
    std::fflush(stdout);
  }
  return 0;
}

// One client's worth of representative traffic so every metric family
// on the server moves. Creates (and destroys) a scratch graph under
// `dir` on the server's filesystem.
void RunOneWorkload(const std::string& host, uint16_t port,
                    const std::string& dir,
                    const rpc::RemoteHam::Options& options) {
  auto client = Unwrap(rpc::RemoteHam::Connect(host, port, options));
  auto created = Unwrap(client->CreateGraph(dir, 0755));
  ham::Context ctx =
      Unwrap(client->OpenGraph(created.project, "neptune_ctl", dir));

  Check(client->BeginTransaction(ctx));
  auto a = Unwrap(client->AddNode(ctx, true));
  auto b = Unwrap(client->AddNode(ctx, true));
  Check(client->ModifyNode(ctx, a.node, a.creation_time,
                           "workload: node a, version 1\n", {}, "v1"));
  Check(client->ModifyNode(ctx, b.node, b.creation_time,
                           "workload: node b\n", {}, "v1"));
  auto link = Unwrap(client->AddLink(ctx, ham::LinkPt{a.node, 3, 0, true},
                                     ham::LinkPt{b.node, 0, 0, true}));
  Check(client->CommitTransaction(ctx));

  // Another version of node a, so the delta layer does real work.
  auto reopened = Unwrap(client->OpenNode(ctx, a.node, 0, {}));
  std::vector<ham::AttachmentUpdate> updates;
  for (const auto& att : reopened.attachments) {
    updates.push_back({att.link, att.is_source_end, att.position});
  }
  Check(client->ModifyNode(ctx, a.node, reopened.current_version_time,
                           "workload: node a, version 2\n", updates, "v2"));

  // Read version 1 back now that version 2 is current: the first read
  // reconstructs through the delta chain (delta.cache.miss), the
  // second is served from the reconstruction cache (delta.cache.hit).
  const ham::Time v1_time = reopened.current_version_time;
  (void)Unwrap(client->OpenNode(ctx, a.node, v1_time, {}));
  (void)Unwrap(client->OpenNode(ctx, a.node, v1_time, {}));

  auto relation = Unwrap(client->GetAttributeIndex(ctx, "relation"));
  Check(client->SetLinkAttributeValue(ctx, link.link, relation, "comment"));
  Check(client->SetNodeAttributeValue(ctx, a.node, relation, "document"));

  (void)Unwrap(client->GetGraphQuery(ctx, 0, "", "", {}, {}));
  (void)Unwrap(client->GetNodeVersions(ctx, a.node));
  (void)Unwrap(client->GetToNode(ctx, link.link, 0));
  Check(client->Checkpoint(ctx));

  Check(client->CloseGraph(ctx));
  Check(client->DestroyGraph(created.project, dir));
}

// Remote `workload`: with --clients N, N concurrent connections each
// drive the burst against their own scratch graph (`dir-0`, `dir-1`,
// ...) — a quick way to exercise the server's admission control and
// session cleanup from the command line.
int RemoteWorkload(const std::string& host, uint16_t port,
                   const std::string& dir,
                   const rpc::RemoteHam::Options& options, int clients) {
  if (clients <= 1) {
    RunOneWorkload(host, port, dir, options);
    std::printf("workload complete against %s:%u (scratch graph %s)\n",
                host.empty() ? "localhost" : host.c_str(), port, dir.c_str());
    return 0;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      RunOneWorkload(host, port, dir + "-" + std::to_string(i), options);
    });
  }
  for (auto& t : threads) t.join();
  std::printf("workload complete against %s:%u (%d clients, scratch graphs "
              "%s-0..%s-%d)\n",
              host.empty() ? "localhost" : host.c_str(), port, clients,
              dir.c_str(), dir.c_str(), clients - 1);
  return 0;
}

// `query [--explain]`: run a getGraphQuery through the planner (works
// against a local directory or a live server) and optionally print the
// plan the engine chose. --scan forces the scan baseline; --verify
// cross-checks the indexed result against a scan under one lock.
int RunQuery(ham::HamInterface* engine, ham::Context ctx,
             const std::string& node_pred, bool explain, bool force_scan,
             bool verify) {
  ham::QueryOptions options;
  options.force_scan = force_scan;
  options.verify = verify;
  auto result = Unwrap(
      engine->GetGraphQueryExplained(ctx, 0, node_pred, "", {}, {}, options));
  for (const auto& node : result.graph.nodes) {
    std::printf("%8" PRIu64 "\n", node.node);
  }
  std::printf("(%zu nodes, %zu links)\n", result.graph.nodes.size(),
              result.graph.links.size());
  const ham::QueryPlan& plan = result.plan;
  if (explain) {
    std::printf("plan          : %s%s\n", ham::QueryPlanKindName(plan.kind),
                plan.eligible ? "" : "  (view not index-eligible)");
    std::printf("conjuncts     : %u\n", plan.conjuncts);
    std::printf("candidates    : %" PRIu64 "\n", plan.candidates);
    std::printf("residual evals: %" PRIu64 "\n", plan.residual_evals);
    std::printf("index maint   : %" PRIu64 " delta(s) applied%s\n",
                plan.applied_deltas, plan.rebuilt ? ", full rebuild" : "");
    if (plan.verified) {
      std::printf("verify        : %s\n",
                  plan.verify_match ? "indexed == scan" : "MISMATCH");
    }
  }
  return plan.verified && !plan.verify_match ? 1 : 0;
}

struct QueryFlags {
  std::string predicate;
  bool explain = false;
  bool force_scan = false;
  bool verify = false;
  bool ok = false;
};

QueryFlags ParseQueryFlags(int argc, char** argv, int first) {
  QueryFlags flags;
  if (first >= argc) return flags;
  flags.predicate = argv[first];
  flags.ok = true;
  for (int i = first + 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--explain") {
      flags.explain = true;
    } else if (flag == "--scan") {
      flags.force_scan = true;
    } else if (flag == "--verify") {
      flags.verify = true;
    } else {
      flags.ok = false;
      return flags;
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];

  std::string host;
  uint16_t port = 0;
  if (ParseHostPort(dir, &host, &port)) {
    if (command == "stats") {
      const bool json = argc > 3 && std::string(argv[3]) == "--json";
      return RemoteStats(host, port, json);
    }
    if (command == "trace") {
      std::string chrome_out;
      if (argc > 3) {
        if (argc < 5 || std::string(argv[3]) != "--chrome") return Usage();
        chrome_out = argv[4];
      }
      return RemoteTrace(host, port, chrome_out);
    }
    if (command == "slowops") return RemoteSlowOps(host, port);
    if (command == "top") {
      std::vector<std::string> targets;
      unsigned interval_ms = 2000;
      long iterations = 0;  // 0 = until killed
      uint32_t window_s = 10;
      int i = 2;
      for (; i < argc; ++i) {
        std::string h;
        uint16_t p = 0;
        if (!ParseHostPort(argv[i], &h, &p)) break;
        targets.push_back(argv[i]);
      }
      for (; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const long value = std::atol(argv[i + 1]);
        if (flag == "--interval-ms") {
          interval_ms = static_cast<unsigned>(value);
        } else if (flag == "--iterations") {
          iterations = value;
        } else if (flag == "--window") {
          window_s = static_cast<uint32_t>(value);
        } else {
          return Usage();
        }
      }
      if (i != argc || targets.empty() || window_s == 0) return Usage();
      return RunTop(targets, interval_ms, iterations, window_s);
    }
    if (command == "query") {
      // The project id still comes from the PROJECT file, so the
      // server-side directory must be readable here too (the usual
      // localhost demo setup).
      if (argc < 5) return Usage();
      const std::string server_dir = argv[3];
      QueryFlags flags = ParseQueryFlags(argc, argv, 4);
      if (!flags.ok) return Usage();
      ham::ProjectId project =
          Unwrap(ham::Ham::ReadProjectId(Env::Default(), server_dir));
      auto client = ConnectTo(host, port);
      ham::Context ctx =
          Unwrap(client->OpenGraph(project, "neptune_ctl", server_dir));
      int rc = RunQuery(client.get(), ctx, flags.predicate, flags.explain,
                        flags.force_scan, flags.verify);
      Check(client->CloseGraph(ctx));
      return rc;
    }
    if (command == "workload") {
      if (argc < 4) return Usage();
      rpc::RemoteHam::Options options;
      int clients = 1;
      for (int i = 4; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const int value = std::atoi(argv[i + 1]);
        if (flag == "--deadline-ms") {
          options.connect_timeout_ms = value;
          options.send_timeout_ms = value;
          options.recv_timeout_ms = value;
        } else if (flag == "--retries") {
          options.max_retries = static_cast<uint32_t>(value);
        } else if (flag == "--clients") {
          clients = value;
        } else if (flag == "--pipeline") {
          // Multiplex the workload's requests on one tagged connection
          // (degrades to classic one-in-flight against older servers).
          options.pipeline = value != 0;
        } else {
          return Usage();
        }
      }
      return RemoteWorkload(host, port, argv[3], options, clients);
    }
    if (command == "promote") {
      auto client = ConnectTo(host, port);
      uint64_t term = Unwrap(client->Promote());
      std::printf("promoted %s:%u to primary, fencing term %" PRIu64 "\n",
                  host.c_str(), port, term);
      return 0;
    }
    if (command == "repl") {
      if (argc < 4) return Usage();
      auto client = ConnectTo(host, port);
      ham::ReplNodeStatus status = Unwrap(client->ReplStatus(argv[3]));
      std::printf("role        : %s\n",
                  status.follower ? "follower" : "primary");
      std::printf("term        : %" PRIu64 "\n", status.term);
      std::printf("epoch       : %" PRIu64 "\n", status.epoch);
      std::printf("wal bytes   : %" PRIu64 "\n", status.wal_bytes);
      std::printf("lag bytes   : %" PRIu64 "\n", status.lag_bytes);
      if (status.behind_ms == ~0ull) {
        std::printf("behind      : never caught up\n");
      } else {
        std::printf("behind      : %" PRIu64 " ms\n", status.behind_ms);
      }
      return 0;
    }
    std::fprintf(stderr,
                 "neptune_ctl: only stats, top, trace, slowops, query, "
                 "workload, promote and repl accept host:port\n");
    return 2;
  }
  if (command == "workload" || command == "trace" || command == "slowops" ||
      command == "repl" || command == "top") {
    std::fprintf(stderr, "neptune_ctl: %s needs a host:port target\n",
                 command.c_str());
    return 2;
  }

  if (command == "recover") {
    return Recover(dir, argc > 3 && std::string(argv[3]) == "--json");
  }
  if (command == "promote") return PromoteDir(dir);

  ham::Ham engine(Env::Default(), ham::HamOptions());

  if (command == "create") {
    auto created = Unwrap(engine.CreateGraph(dir, 0755));
    std::printf("created graph in %s (project %" PRIu64 ")\n", dir.c_str(),
                created.project);
    return 0;
  }
  if (command == "destroy") {
    ham::ProjectId project =
        Unwrap(ham::Ham::ReadProjectId(Env::Default(), dir));
    Check(engine.DestroyGraph(project, dir));
    std::printf("destroyed %s\n", dir.c_str());
    return 0;
  }

  ham::Context ctx = OpenByDir(&engine, dir);

  if (command == "stats") {
    auto stats = Unwrap(engine.GetStats(ctx));
    std::printf("nodes       : %" PRIu64 " live / %" PRIu64 " total\n",
                stats.node_count, stats.total_node_records);
    std::printf("links       : %" PRIu64 " live / %" PRIu64 " total\n",
                stats.link_count, stats.total_link_records);
    std::printf("attributes  : %" PRIu64 "\n", stats.attribute_count);
    std::printf("contexts    : %" PRIu64 "\n", stats.thread_count + 1);
    std::printf("wal bytes   : %" PRIu64 "\n", stats.wal_bytes);
    std::printf("logical time: %" PRIu64 "\n", stats.current_time);
  } else if (command == "ls") {
    const std::string predicate = argc > 3 ? argv[3] : "";
    app::DocumentModel doc(&engine, ctx);
    Check(doc.Init());
    auto result =
        Unwrap(engine.GetGraphQuery(ctx, 0, predicate, "", {}, {}));
    for (const auto& node : result.nodes) {
      std::printf("%8" PRIu64 "  %s\n", node.node,
                  doc.TitleOf(node.node, 0).c_str());
    }
    std::printf("(%zu nodes, %zu links)\n", result.nodes.size(),
                result.links.size());
  } else if (command == "query") {
    QueryFlags flags = ParseQueryFlags(argc, argv, 3);
    if (!flags.ok) return Usage();
    const int rc = RunQuery(&engine, ctx, flags.predicate, flags.explain,
                            flags.force_scan, flags.verify);
    Check(engine.CloseGraph(ctx));
    return rc;
  } else if (command == "cat") {
    if (argc < 4) return Usage();
    const ham::NodeIndex node = std::strtoull(argv[3], nullptr, 10);
    const ham::Time time = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;
    auto opened = Unwrap(engine.OpenNode(ctx, node, time, {}));
    std::fwrite(opened.contents.data(), 1, opened.contents.size(), stdout);
  } else if (command == "new") {
    app::DocumentModel doc(&engine, ctx);
    Check(doc.Init());
    auto added = Unwrap(engine.AddNode(ctx, true));
    const std::string contents = ReadStdin();
    Check(engine.ModifyNode(ctx, added.node, added.creation_time, contents,
                            {}, "neptune_ctl new"));
    if (argc > 3) {
      Check(engine.SetNodeAttributeValue(ctx, added.node, doc.icon_attr(),
                                         argv[3]));
    }
    std::printf("%" PRIu64 "\n", added.node);
  } else if (command == "put") {
    if (argc < 4) return Usage();
    const ham::NodeIndex node = std::strtoull(argv[3], nullptr, 10);
    auto opened = Unwrap(engine.OpenNode(ctx, node, 0, {}));
    std::vector<ham::AttachmentUpdate> updates;
    for (const auto& att : opened.attachments) {
      updates.push_back({att.link, att.is_source_end, att.position});
    }
    Check(engine.ModifyNode(ctx, node, opened.current_version_time,
                            ReadStdin(), updates, "neptune_ctl put"));
  } else if (command == "link") {
    if (argc < 6) return Usage();
    const ham::NodeIndex from = std::strtoull(argv[3], nullptr, 10);
    const uint64_t pos = std::strtoull(argv[4], nullptr, 10);
    const ham::NodeIndex to = std::strtoull(argv[5], nullptr, 10);
    auto link = Unwrap(engine.AddLink(ctx, ham::LinkPt{from, pos, 0, true},
                                      ham::LinkPt{to, 0, 0, true}));
    if (argc > 6) {
      auto relation = Unwrap(engine.GetAttributeIndex(ctx, "relation"));
      Check(engine.SetLinkAttributeValue(ctx, link.link, relation, argv[6]));
    }
    std::printf("%" PRIu64 "\n", link.link);
  } else if (command == "versions") {
    if (argc < 4) return Usage();
    const ham::NodeIndex node = std::strtoull(argv[3], nullptr, 10);
    auto versions = Unwrap(engine.GetNodeVersions(ctx, node));
    for (const auto& v : versions.major) {
      std::printf("major t=%" PRIu64 "  %s\n", v.time,
                  v.explanation.c_str());
    }
    for (const auto& v : versions.minor) {
      std::printf("minor t=%" PRIu64 "  %s\n", v.time,
                  v.explanation.c_str());
    }
  } else if (command == "diff") {
    if (argc < 6) return Usage();
    const ham::NodeIndex node = std::strtoull(argv[3], nullptr, 10);
    const ham::Time t1 = std::strtoull(argv[4], nullptr, 10);
    const ham::Time t2 = std::strtoull(argv[5], nullptr, 10);
    auto diffs = Unwrap(engine.GetNodeDifferences(ctx, node, t1, t2));
    std::fputs(delta::FormatDifferences(diffs).c_str(), stdout);
  } else if (command == "fsck") {
    auto problems = Unwrap(engine.VerifyGraph(ctx));
    for (const auto& problem : problems) {
      std::printf("PROBLEM: %s\n", problem.c_str());
    }
    std::printf(problems.empty() ? "graph is clean\n"
                                 : "%zu problem(s) found\n",
                problems.size());
  } else if (command == "prune") {
    if (argc < 4) return Usage();
    const ham::Time before = std::strtoull(argv[3], nullptr, 10);
    auto snapshot_bytes = Unwrap(engine.PruneHistory(ctx, before));
    std::printf("pruned history before t=%" PRIu64 "; snapshot now %" PRIu64
                " bytes\n",
                before, snapshot_bytes);
  } else if (command == "export") {
    auto exported = Unwrap(app::ExportGraph(&engine, ctx, 0));
    std::fwrite(exported.data(), 1, exported.size(), stdout);
  } else if (command == "import") {
    auto report = Unwrap(app::ImportGraph(&engine, ctx, ReadStdin()));
    std::fprintf(stderr, "imported %zu nodes, %zu links, %zu attributes\n",
                 report.nodes, report.links, report.attributes);
  } else {
    return Usage();
  }
  Check(engine.CloseGraph(ctx));
  return 0;
}

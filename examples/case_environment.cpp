// case_environment: the paper's §4.2 scenario — a Modula-2-flavoured
// CASE environment on top of the HAM. Builds a small module graph with
// imports and nested procedures, compiles it incrementally, arms the
// §5 auto-recompile demon, and shows the attribute-driven queries the
// paper motivates ("access only those nodes that are part of the
// specification document").
//
//   ./case_environment [directory]

#include <cstdio>
#include <string>

#include "app/browsers/graph_browser.h"
#include "app/case_model.h"
#include "app/document.h"
#include "ham/ham.h"

using neptune::Env;
using neptune::ham::Ham;
using neptune::ham::HamOptions;
using namespace neptune::app;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    auto _s = (expr);                                         \
    if (!_s.ok()) {                                           \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _s.ToString().c_str());          \
      return 1;                                               \
    }                                                         \
  } while (0)

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/neptune_case";
  Env* env = Env::Default();
  env->RemoveDirRecursive(dir);
  Ham ham(env, HamOptions());

  auto created = ham.CreateGraph(dir, 0755);
  CHECK_OK(created.status());
  auto ctx = ham.OpenGraph(created->project, "local", dir);
  CHECK_OK(ctx.status());

  CaseModel project(&ham, *ctx);
  CHECK_OK(project.Init());
  project.InstallCompileDemonHandler(&ham.demons());

  // ---- The module graph of a small Modula-2 project ----------------
  auto lists_def = project.AddModule(
      "Lists.def", CaseConventions::kDefinitionModule,
      "DEFINITION MODULE Lists;\n"
      "  TYPE List;\n"
      "  PROCEDURE Append(VAR l: List; x: INTEGER);\n"
      "END Lists.\n");
  auto lists_impl = project.AddModule(
      "Lists.mod", CaseConventions::kImplementationModule,
      "IMPLEMENTATION MODULE Lists;\n"
      "END Lists.\n");
  auto queues = project.AddModule(
      "Queues.mod", CaseConventions::kImplementationModule,
      "IMPLEMENTATION MODULE Queues;\n"
      "  IMPORT Lists;\n"
      "END Queues.\n");
  CHECK_OK(lists_def.status());
  CHECK_OK(lists_impl.status());
  CHECK_OK(queues.status());
  CHECK_OK(project.AddImport(*queues, *lists_def, 34));

  // Procedures nested inside the implementation, at their offsets.
  auto append = project.AddProcedure(
      *lists_impl, "Append",
      "PROCEDURE Append(VAR l: List; x: INTEGER);\nBEGIN\nEND Append;\n", 30);
  auto remove = project.AddProcedure(
      *lists_impl, "Remove",
      "PROCEDURE Remove(VAR l: List): INTEGER;\nBEGIN\nEND Remove;\n", 60);
  CHECK_OK(append.status());
  CHECK_OK(remove.status());

  // ---- A full build, then an incremental one -----------------------
  auto first = project.CompileAll();
  CHECK_OK(first.status());
  std::printf("initial build : compiled %zu, up-to-date %zu\n",
              first->compiled, first->up_to_date);
  auto second = project.CompileAll();
  CHECK_OK(second.status());
  std::printf("rebuild       : compiled %zu, up-to-date %zu\n",
              second->compiled, second->up_to_date);

  // Edit one procedure; only it recompiles.
  CHECK_OK(project.EditSource(
      *append,
      "PROCEDURE Append(VAR l: List; x: INTEGER);\n"
      "BEGIN (* now with bounds check *)\nEND Append;\n"));
  auto third = project.CompileAll();
  CHECK_OK(third.status());
  std::printf("after 1 edit  : compiled %zu, up-to-date %zu\n",
              third->compiled, third->up_to_date);

  // ---- The §5 demon: recompile-on-modify ---------------------------
  CHECK_OK(project.EnableAutoCompile(*remove));
  CHECK_OK(project.EditSource(
      *remove,
      "PROCEDURE Remove(VAR l: List): INTEGER;\n"
      "BEGIN (* demon recompiled me *)\nEND Remove;\n"));
  auto stale = project.NeedsRecompile(*remove);
  CHECK_OK(stale.status());
  std::printf("after demon   : Remove needs recompile? %s\n",
              *stale ? "yes (BUG)" : "no - the demon already rebuilt it");

  // ---- Attribute-driven queries (paper §3/§4.2) ---------------------
  auto sources = ham.GetGraphQuery(
      *ctx, 0, "contentType = 'Modula-2 source'", "", {}, {});
  auto objects = ham.GetGraphQuery(
      *ctx, 0, "contentType = 'Modula-2 object code'", "", {}, {});
  auto procedures = ham.GetGraphQuery(*ctx, 0, "codeType = procedure", "",
                                      {}, {});
  CHECK_OK(sources.status());
  CHECK_OK(objects.status());
  CHECK_OK(procedures.status());
  std::printf("query contentType='Modula-2 source'      : %zu nodes\n",
              sources->nodes.size());
  std::printf("query contentType='Modula-2 object code' : %zu nodes\n",
              objects->nodes.size());
  std::printf("query codeType=procedure                 : %zu nodes\n",
              procedures->nodes.size());

  auto importers = project.ImportersOf(*lists_def);
  CHECK_OK(importers.status());
  std::printf("modules importing Lists.def              : %zu\n",
              importers->size());

  // ---- The project graph, pictorially -------------------------------
  std::printf("\nproject graph (compilesInto links only):\n");
  GraphBrowser browser(&ham, *ctx);
  GraphBrowserOptions options;
  options.link_predicate = "relation = compilesInto";
  options.node_predicate = "exists icon";
  auto picture = browser.Render(options);
  CHECK_OK(picture.status());
  std::fputs(picture->c_str(), stdout);

  CHECK_OK(ham.CloseGraph(*ctx));
  CHECK_OK(ham.DestroyGraph(created->project, dir));
  return 0;
}

// version_explorer: Neptune's versioning story end to end —
// "a complete version history of nodes and links ... so that it is
// possible to see any version of the hyperdocument back to its
// beginning" — plus the §5 contexts extension: a private world for
// tentative design, merged back into the main thread.
//
//   ./version_explorer [directory]

#include <cstdio>
#include <string>

#include "app/browsers/inspect_browsers.h"
#include "app/browsers/node_browser.h"
#include "delta/text_diff.h"
#include "ham/ham.h"

using neptune::Env;
using neptune::ham::Ham;
using neptune::ham::HamOptions;
using neptune::ham::Time;
using namespace neptune::app;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    auto _s = (expr);                                         \
    if (!_s.ok()) {                                           \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _s.ToString().c_str());          \
      return 1;                                               \
    }                                                         \
  } while (0)

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/neptune_versions";
  Env* env = Env::Default();
  env->RemoveDirRecursive(dir);
  Ham ham(env, HamOptions());

  auto created = ham.CreateGraph(dir, 0755);
  CHECK_OK(created.status());
  auto ctx = ham.OpenGraph(created->project, "local", dir);
  CHECK_OK(ctx.status());

  // ---- A node that evolves through five drafts ---------------------
  auto node = ham.AddNode(*ctx, /*keep_history=*/true);
  CHECK_OK(node.status());
  const char* drafts[] = {
      "The HAM stores nodes.\n",
      "The HAM stores nodes and links.\n",
      "The HAM stores nodes and links.\nIt keeps version histories.\n",
      "The HAM stores nodes and links.\nIt keeps complete version "
      "histories.\nBackward deltas keep storage small.\n",
      "The Hypertext Abstract Machine stores nodes and links.\nIt keeps "
      "complete version histories.\nBackward deltas keep storage small.\n",
  };
  Time version_times[6] = {node->creation_time};
  Time expected = node->creation_time;
  for (int i = 0; i < 5; ++i) {
    CHECK_OK(ham.ModifyNode(*ctx, node->node, expected, drafts[i], {},
                            "draft " + std::to_string(i + 1)));
    auto ts = ham.GetNodeTimeStamp(*ctx, node->node);
    CHECK_OK(ts.status());
    expected = *ts;
    version_times[i + 1] = *ts;
  }

  // ---- The version browser ------------------------------------------
  VersionBrowser version_browser(&ham, *ctx);
  auto history = version_browser.Render(node->node);
  CHECK_OK(history.status());
  std::fputs(history->c_str(), stdout);

  // ---- Any version, on demand ---------------------------------------
  std::printf("\ntime travel:\n");
  for (int v = 1; v <= 5; ++v) {
    auto opened = ham.OpenNode(*ctx, node->node, version_times[v], {});
    CHECK_OK(opened.status());
    std::printf("  draft %d (t=%llu): %zu bytes, first line: %.*s\n", v,
                (unsigned long long)version_times[v], opened->contents.size(),
                (int)opened->contents.find('\n'), opened->contents.c_str());
  }

  // ---- Side-by-side differences (the differences browser) ------------
  std::printf("\ndifferences, draft 2 vs draft 5:\n");
  NodeDifferencesBrowser diff_browser(&ham, *ctx);
  auto diff = diff_browser.Render(node->node, version_times[2],
                                  version_times[5]);
  CHECK_OK(diff.status());
  std::fputs(diff->c_str(), stdout);

  // ---- Contexts: a private world (§5) --------------------------------
  std::printf("\ncontexts (multiple version threads):\n");
  auto world = ham.CreateContext(*ctx, "tentative-rewrite");
  CHECK_OK(world.status());
  auto branch = ham.OpenContext(*ctx, world->thread);
  CHECK_OK(branch.status());

  auto branch_ts = ham.GetNodeTimeStamp(*branch, node->node);
  CHECK_OK(branch_ts.status());
  CHECK_OK(ham.ModifyNode(*branch, node->node, *branch_ts,
                          "A COMPLETELY tentative rewrite.\n", {},
                          "private-world draft"));
  auto main_view = ham.OpenNode(*ctx, node->node, 0, {});
  auto branch_view = ham.OpenNode(*branch, node->node, 0, {});
  CHECK_OK(main_view.status());
  CHECK_OK(branch_view.status());
  std::printf("  main thread sees   : %.*s\n",
              (int)main_view->contents.find('\n'),
              main_view->contents.c_str());
  std::printf("  private world sees : %.*s\n",
              (int)branch_view->contents.find('\n'),
              branch_view->contents.c_str());

  CHECK_OK(ham.MergeContext(*ctx, world->thread, /*force=*/false));
  auto merged = ham.OpenNode(*ctx, node->node, 0, {});
  CHECK_OK(merged.status());
  std::printf("  after merge, main  : %.*s\n",
              (int)merged->contents.find('\n'), merged->contents.c_str());

  // Every pre-merge version is still reachable.
  auto old_draft = ham.OpenNode(*ctx, node->node, version_times[3], {});
  CHECK_OK(old_draft.status());
  std::printf("  draft 3 still reads back %zu bytes after the merge\n",
              old_draft->contents.size());

  // ---- Storage accounting --------------------------------------------
  auto stats = ham.GetStats(*ctx);
  CHECK_OK(stats.status());
  std::printf("\nstats: %llu live node(s), %llu attribute(s), time=%llu\n",
              (unsigned long long)stats->node_count,
              (unsigned long long)stats->attribute_count,
              (unsigned long long)stats->current_time);

  CHECK_OK(ham.CloseGraph(*branch));
  CHECK_OK(ham.CloseGraph(*ctx));
  CHECK_OK(ham.DestroyGraph(created->project, dir));
  return 0;
}

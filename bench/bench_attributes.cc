// Experiment B7 — attributes as the semantic layer: "an unlimited
// number of attribute/value pairs can be attached to a node or link
// ... very dynamic" (paper §3/§4.2).
//
// Measures attach/update/read/detach throughput, versioned (archive)
// vs unversioned (file) objects, and reads at historical times as the
// per-attribute history grows.
//
// Expected shape: sets are O(log history) appends plus the commit
// path; current reads O(log history); historical reads the same (one
// binary search); file-node sets stay O(1) since history is replaced.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace neptune {
namespace {

void BM_SetNodeAttribute(benchmark::State& state) {
  const bool archive = state.range(0) != 0;
  bench::ScratchGraph graph("b7_set");
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  auto added = ham->AddNode(ctx, archive);
  auto attr = *ham->GetAttributeIndex(ctx, "status");
  uint64_t i = 0;
  for (auto _ : state) {
    ham->SetNodeAttributeValue(ctx, added->node, attr,
                               "value-" + std::to_string(i++ % 16));
  }
  state.SetLabel(archive ? "archive (versioned)" : "file (unversioned)");
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SetNodeAttribute)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

void BM_GetNodeAttribute(benchmark::State& state) {
  const int history = static_cast<int>(state.range(0));
  const bool historical = state.range(1) != 0;
  bench::ScratchGraph graph("b7_get");
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  auto added = ham->AddNode(ctx, true);
  auto attr = *ham->GetAttributeIndex(ctx, "status");
  ham::Time mid = 0;
  for (int i = 0; i < history; ++i) {
    ham->SetNodeAttributeValue(ctx, added->node, attr,
                               "v" + std::to_string(i));
    if (i == history / 2) mid = ham->GetStats(ctx)->current_time;
  }
  const ham::Time when = historical ? mid : 0;
  for (auto _ : state) {
    auto value = ham->GetNodeAttributeValue(ctx, added->node, attr, when);
    benchmark::DoNotOptimize(value);
  }
  state.SetLabel(historical ? "historical read" : "current read");
}

BENCHMARK(BM_GetNodeAttribute)
    ->ArgsProduct({{1, 100, 10000}, {0, 1}})
    ->ArgNames({"history", "past"})
    ->Unit(benchmark::kMicrosecond);

void BM_GetNodeAttributesAll(benchmark::State& state) {
  const int attrs = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b7_all");
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  auto added = ham->AddNode(ctx, true);
  for (int i = 0; i < attrs; ++i) {
    auto attr = *ham->GetAttributeIndex(ctx, "attr" + std::to_string(i));
    ham->SetNodeAttributeValue(ctx, added->node, attr,
                               "value" + std::to_string(i));
  }
  for (auto _ : state) {
    auto all = ham->GetNodeAttributes(ctx, added->node, 0);
    benchmark::DoNotOptimize(all);
  }
  state.counters["attrs"] = attrs;
}

BENCHMARK(BM_GetNodeAttributesAll)->Arg(1)->Arg(16)->Arg(128)->Unit(
    benchmark::kMicrosecond);

void BM_GetAttributeIndexInterned(benchmark::State& state) {
  bench::ScratchGraph graph("b7_intern");
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  ham->GetAttributeIndex(ctx, "contentType");
  for (auto _ : state) {
    auto attr = ham->GetAttributeIndex(ctx, "contentType");
    benchmark::DoNotOptimize(attr);
  }
}

BENCHMARK(BM_GetAttributeIndexInterned)->Unit(benchmark::kMicrosecond);

void BM_PredicateEvaluation(benchmark::State& state) {
  // Pure predicate-evaluation cost, factored out of query scans.
  auto pred = *query::Predicate::Parse(
      "(kind = special | serial < 50) & !(serial = 77) & exists kind");
  query::MapAttributeSource attrs{{"kind", "special"}, {"serial", "123"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.Evaluate(attrs));
  }
}

BENCHMARK(BM_PredicateEvaluation);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

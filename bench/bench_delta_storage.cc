// Experiment B1 — "effective storage of many versions ... without
// copying each individual item; for nodes this is provided by backward
// deltas similar to RCS" (paper §3).
//
// Measures, for a node that accumulates versions through small edits:
//   * bytes stored by the backward-delta representation vs the
//     full-copy baseline (counter: stored_bytes, ratio)
//   * version-append cost for both representations
//
// Expected shape: delta storage grows with edit size, not contents
// size; full-copy grows with contents size per version; delta wins by
// roughly contents_size / edit_size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "delta/version_chain.h"

namespace neptune {
namespace {

using delta::ChainMode;
using delta::VersionChain;

// Args: {versions, contents_size, edit_size}.
void BM_VersionChainStorage(benchmark::State& state, ChainMode mode) {
  const int versions = static_cast<int>(state.range(0));
  const size_t contents_size = static_cast<size_t>(state.range(1));
  const size_t edit_size = static_cast<size_t>(state.range(2));

  size_t stored = 0;
  size_t full = 0;
  for (auto _ : state) {
    Random rng(42);
    std::string text = rng.NextString(contents_size);
    VersionChain chain(mode);
    uint64_t t = 0;
    for (int v = 0; v < versions; ++v) {
      bench::RandomEdit(&rng, &text, edit_size);
      benchmark::DoNotOptimize(chain.Append(++t, text, ""));
      full += text.size();
    }
    stored += chain.StoredBytes();
  }
  state.counters["stored_bytes"] =
      benchmark::Counter(static_cast<double>(stored) / state.iterations());
  state.counters["vs_full_copy"] =
      static_cast<double>(stored) / static_cast<double>(full);
  state.counters["versions"] = versions;
}

void DeltaArgs(benchmark::internal::Benchmark* b) {
  for (int versions : {10, 100, 500}) {
    for (int contents : {4 << 10, 64 << 10}) {
      for (int edit : {16, 256}) {
        b->Args({versions, contents, edit});
      }
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(BM_VersionChainStorage, backward_delta,
                  ChainMode::kBackwardDelta)
    ->Apply(DeltaArgs);
BENCHMARK_CAPTURE(BM_VersionChainStorage, full_copy, ChainMode::kFullCopy)
    ->Apply(DeltaArgs);
BENCHMARK_CAPTURE(BM_VersionChainStorage, forward_delta,
                  ChainMode::kForwardDelta)
    ->Apply(DeltaArgs);

// Append latency for one more version on an existing chain.
void BM_VersionAppend(benchmark::State& state, ChainMode mode) {
  const size_t contents_size = static_cast<size_t>(state.range(0));
  Random rng(7);
  std::string text = rng.NextString(contents_size);
  VersionChain chain(mode);
  uint64_t t = 0;
  chain.Append(++t, text, "");
  for (auto _ : state) {
    bench::RandomEdit(&rng, &text, 64);
    benchmark::DoNotOptimize(chain.Append(++t, text, ""));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(contents_size));
}

BENCHMARK_CAPTURE(BM_VersionAppend, backward_delta, ChainMode::kBackwardDelta)
    ->Arg(4 << 10)
    ->Arg(64 << 10)
    ->Arg(512 << 10);
BENCHMARK_CAPTURE(BM_VersionAppend, full_copy, ChainMode::kFullCopy)
    ->Arg(4 << 10)
    ->Arg(64 << 10)
    ->Arg(512 << 10);

// End-to-end: the same comparison through the full HAM (WAL + commit),
// archive node vs file node.
void BM_HamModifyNode(benchmark::State& state) {
  const bool archive = state.range(0) != 0;
  const size_t contents_size = static_cast<size_t>(state.range(1));
  bench::ScratchGraph graph("b1_modify");
  Random rng(11);
  std::string text = rng.NextString(contents_size);
  auto added = graph.ham()->AddNode(graph.ctx(), archive);
  ham::Time expected = added->creation_time;
  for (auto _ : state) {
    bench::RandomEdit(&rng, &text, 64);
    benchmark::DoNotOptimize(graph.ham()->ModifyNode(
        graph.ctx(), added->node, expected, text, {}, ""));
    expected = *graph.ham()->GetNodeTimeStamp(graph.ctx(), added->node);
  }
}

BENCHMARK(BM_HamModifyNode)
    ->ArgsProduct({{1, 0}, {4 << 10, 64 << 10}})
    ->ArgNames({"archive", "bytes"});

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

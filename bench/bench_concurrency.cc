// Experiment B9 — the concurrent read path: per-graph reader-writer
// locking lets read-only HAM operations from different sessions run in
// parallel while one writer churns in the background.
//
// Measures aggregate ops/sec of openNode and getGraphQuery at 1..8
// reader threads, through the in-process engine and through the RPC
// server — one connection per reader, and (since PR 6) all readers
// multiplexed onto a single pipelined connection.
//
// Expected shape: near-linear scaling of reader throughput with
// threads while the (throttled) writer keeps taking the exclusive
// lock; before the shared_mutex split these curves were flat.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace {

constexpr int kNodes = 64;

// Shared graph + RPC server, built once for the whole binary.
struct ConcurrencyFixture {
  ConcurrencyFixture() : graph("b9_conc") {
    kind = *graph.ham()->GetAttributeIndex(graph.ctx(), "kind");
    for (int i = 0; i < kNodes; ++i) {
      ham::NodeIndex n =
          graph.MakeNode("node " + std::to_string(i) + " " +
                         std::string(1024, 'x'));
      graph.ham()->SetNodeAttributeValue(graph.ctx(), n, kind, "stable");
      nodes.push_back(n);
    }
    server = std::make_unique<rpc::Server>(graph.ham());
    port = *server->Start(0);
    rpc::RemoteHam::Options pipeline_options;
    pipeline_options.pipeline = true;
    pipelined = std::move(
        *rpc::RemoteHam::Connect("localhost", port, pipeline_options));
  }

  ~ConcurrencyFixture() {
    pipelined.reset();
    server->Stop();
  }

  bench::ScratchGraph graph;
  ham::AttributeIndex kind = 0;
  std::vector<ham::NodeIndex> nodes;
  std::unique_ptr<rpc::Server> server;
  uint16_t port = 0;
  // One pipelined connection shared by every reader thread.
  std::unique_ptr<rpc::RemoteHam> pipelined;
};

ConcurrencyFixture* Fixture() {
  static ConcurrencyFixture* fixture = new ConcurrencyFixture();
  return fixture;
}

// One background writer per benchmark run, started in Setup (main
// thread) and joined in Teardown. It edits a dedicated node, sleeping
// between commits so it models steady background churn rather than a
// tight write loop — the point is reader scaling under a writer, not
// writer throughput (that is bench_transactions' job).
std::atomic<bool> writer_stop{false};
std::thread writer_thread;

void StartWriter(const benchmark::State&) {
  writer_stop = false;
  writer_thread = std::thread([] {
    ConcurrencyFixture* f = Fixture();
    auto ctx = f->graph.ham()->OpenGraph(f->graph.project(), "local",
                                         f->graph.dir());
    if (!ctx.ok()) return;
    auto added = f->graph.ham()->AddNode(*ctx, true);
    if (!added.ok()) return;
    ham::Time expected = added->creation_time;
    uint64_t i = 0;
    while (!writer_stop) {
      f->graph.ham()->ModifyNode(*ctx, added->node, expected,
                                 "churn " + std::to_string(i++), {}, "");
      auto stamp = f->graph.ham()->GetNodeTimeStamp(*ctx, added->node);
      if (stamp.ok()) expected = *stamp;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    f->graph.ham()->CloseGraph(*ctx);
  });
}

void StopWriter(const benchmark::State&) {
  writer_stop = true;
  if (writer_thread.joinable()) writer_thread.join();
}

void ReaderThreads(benchmark::internal::Benchmark* b) {
  b->Threads(1)->Threads(2)->Threads(4)->Threads(8);
  b->Setup(StartWriter)->Teardown(StopWriter);
  b->UseRealTime();
  b->Unit(benchmark::kMicrosecond);
}

void BM_LocalOpenNode(benchmark::State& state) {
  ConcurrencyFixture* f = Fixture();
  // Each reader is its own session, as it would be server-side.
  auto ctx = f->graph.ham()->OpenGraph(f->graph.project(), "local",
                                       f->graph.dir());
  Random rng(100 + state.thread_index());
  for (auto _ : state) {
    auto opened = f->graph.ham()->OpenNode(
        *ctx, f->nodes[rng.Uniform(f->nodes.size())], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
  f->graph.ham()->CloseGraph(*ctx);
}

void BM_LocalGraphQuery(benchmark::State& state) {
  ConcurrencyFixture* f = Fixture();
  auto ctx = f->graph.ham()->OpenGraph(f->graph.project(), "local",
                                       f->graph.dir());
  for (auto _ : state) {
    auto result = f->graph.ham()->GetGraphQuery(*ctx, 0, "kind = stable", "",
                                                {f->kind}, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  f->graph.ham()->CloseGraph(*ctx);
}

BENCHMARK(BM_LocalOpenNode)->Apply(ReaderThreads);
BENCHMARK(BM_LocalGraphQuery)->Apply(ReaderThreads);

// The same workloads through the RPC server. Each reader thread holds
// its own connection — the event loop multiplexes them, the worker
// pool runs them, and the shared lock is what decides whether they
// actually overlap.
void BM_RemoteOpenNode(benchmark::State& state) {
  ConcurrencyFixture* f = Fixture();
  auto client = std::move(*rpc::RemoteHam::Connect("localhost", f->port));
  auto ctx =
      *client->OpenGraph(f->graph.project(), "localhost", f->graph.dir());
  Random rng(200 + state.thread_index());
  for (auto _ : state) {
    auto opened =
        client->OpenNode(ctx, f->nodes[rng.Uniform(f->nodes.size())], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
  client->CloseGraph(ctx);
}

void BM_RemoteGraphQuery(benchmark::State& state) {
  ConcurrencyFixture* f = Fixture();
  auto client = std::move(*rpc::RemoteHam::Connect("localhost", f->port));
  auto ctx =
      *client->OpenGraph(f->graph.project(), "localhost", f->graph.dir());
  for (auto _ : state) {
    auto result =
        client->GetGraphQuery(ctx, 0, "kind = stable", "", {f->kind}, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  client->CloseGraph(ctx);
}

BENCHMARK(BM_RemoteOpenNode)->Apply(ReaderThreads);
BENCHMARK(BM_RemoteGraphQuery)->Apply(ReaderThreads);

// All readers share ONE pipelined connection (PR 6): the requests
// interleave on a single socket with ids, completing out of order, so
// N threads need neither N connections nor N server-side readers.
void BM_RemoteOpenNodeSharedPipelined(benchmark::State& state) {
  ConcurrencyFixture* f = Fixture();
  auto ctx = f->pipelined->OpenGraph(f->graph.project(), "localhost",
                                     f->graph.dir());
  Random rng(300 + state.thread_index());
  for (auto _ : state) {
    auto opened = f->pipelined->OpenNode(
        *ctx, f->nodes[rng.Uniform(f->nodes.size())], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
  f->pipelined->CloseGraph(*ctx);
}

BENCHMARK(BM_RemoteOpenNodeSharedPipelined)->Apply(ReaderThreads);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

// Experiment B3 — getGraphQuery: "directly accesses a set of nodes and
// their interconnecting links" filtered by attribute predicates
// (paper §3, Appendix A.1).
//
// Sweeps graph size x predicate selectivity, plus predicate complexity
// and historical (time-travel) queries.
//
// Expected shape: latency linear in graph size (the HAM evaluates the
// predicate per object); returned-set cost proportional to
// selectivity; historical queries cost the same order as current ones
// (version resolution is a binary search per attribute).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace neptune {
namespace {

// Builds `nodes` nodes; fraction 1/`stride` carry kind=special, the
// rest kind=plain. Sequential isPartOf-ish links chain them.
struct QueryFixture {
  explicit QueryFixture(int nodes, int stride)
      : graph("b3_query_" + std::to_string(nodes)) {
    auto* ham = graph.ham();
    auto ctx = graph.ctx();
    kind = *ham->GetAttributeIndex(ctx, "kind");
    serial = *ham->GetAttributeIndex(ctx, "serial");
    ham::NodeIndex prev = 0;
    for (int i = 0; i < nodes; ++i) {
      auto added = ham->AddNode(ctx, true);
      ham->SetNodeAttributeValue(ctx, added->node, kind,
                                 i % stride == 0 ? "special" : "plain");
      ham->SetNodeAttributeValue(ctx, added->node, serial,
                                 std::to_string(i));
      if (prev != 0) {
        ham->AddLink(ctx, ham::LinkPt{prev, 0, 0, true},
                     ham::LinkPt{added->node, 0, 0, true});
      }
      prev = added->node;
    }
  }

  bench::ScratchGraph graph;
  ham::AttributeIndex kind = 0;
  ham::AttributeIndex serial = 0;
};

// Args: {nodes, stride (1/selectivity)}.
void BM_GetGraphQuerySelectivity(benchmark::State& state) {
  QueryFixture fixture(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  size_t hits = 0;
  for (auto _ : state) {
    auto result = fixture.graph.ham()->GetGraphQuery(
        fixture.graph.ctx(), 0, "kind = special", "", {}, {});
    hits = result->nodes.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["matched"] = static_cast<double>(hits);
  state.counters["nodes"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_GetGraphQuerySelectivity)
    ->ArgsProduct({{100, 1000, 5000}, {1, 10, 100}})
    ->ArgNames({"nodes", "stride"})
    ->Unit(benchmark::kMicrosecond);

// Predicate complexity at a fixed graph size.
void BM_GetGraphQueryPredicateComplexity(benchmark::State& state) {
  static QueryFixture* fixture = new QueryFixture(2000, 10);
  const char* predicates[] = {
      "",                                     // trivially true
      "kind = special",                       // one comparison
      "kind = special & serial >= 100",       // conjunction
      "(kind = special | serial < 50) & !(serial = 77) & exists kind",
  };
  const char* predicate = predicates[state.range(0)];
  for (auto _ : state) {
    auto result = fixture->graph.ham()->GetGraphQuery(
        fixture->graph.ctx(), 0, predicate, "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(predicate[0] == '\0' ? "<true>" : predicate);
}

BENCHMARK(BM_GetGraphQueryPredicateComplexity)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

// Historical vs current query on a graph with churn.
void BM_GetGraphQueryTimeTravel(benchmark::State& state) {
  const bool historical = state.range(0) != 0;
  bench::ScratchGraph graph("b3_history");
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  auto kind = *ham->GetAttributeIndex(ctx, "kind");
  // 500 nodes, each retagged once after the checkpoint time.
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < 500; ++i) {
    auto added = ham->AddNode(ctx, true);
    ham->SetNodeAttributeValue(ctx, added->node, kind, "early");
    nodes.push_back(added->node);
  }
  const ham::Time snapshot_time = ham->GetStats(ctx)->current_time;
  for (ham::NodeIndex n : nodes) {
    ham->SetNodeAttributeValue(ctx, n, kind, "late");
  }
  const ham::Time when = historical ? snapshot_time : 0;
  const char* predicate = historical ? "kind = early" : "kind = late";
  for (auto _ : state) {
    auto result = ham->GetGraphQuery(ctx, when, predicate, "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(historical ? "historical" : "current");
}

BENCHMARK(BM_GetGraphQueryTimeTravel)->Arg(0)->Arg(1)->Unit(
    benchmark::kMicrosecond);

// Ablation: the attribute index vs a full scan, read-heavy workload.
// The index is rebuilt lazily after writes, so its advantage shows on
// repeated queries over a stable graph — the browser refresh pattern.
void BM_QueryIndexAblation(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const bool use_index = state.range(1) != 0;
  bench::ScratchGraph graph("b3_ablation_" + std::to_string(nodes) +
                            (use_index ? "_idx" : "_scan"));
  // Reopen the graph through an engine configured per the ablation arm.
  auto* build_ham = graph.ham();
  auto build_ctx = graph.ctx();
  auto kind = *build_ham->GetAttributeIndex(build_ctx, "kind");
  for (int i = 0; i < nodes; ++i) {
    auto added = build_ham->AddNode(build_ctx, true);
    build_ham->SetNodeAttributeValue(build_ctx, added->node, kind,
                                     i % 100 == 0 ? "special" : "plain");
  }
  ham::HamOptions options;
  options.sync_commits = false;
  options.use_attribute_index = use_index;
  build_ham->CloseGraph(build_ctx);
  ham::Ham engine(graph.env(), options);
  auto ctx = *engine.OpenGraph(graph.project(), "local", graph.dir());

  for (auto _ : state) {
    auto result = engine.GetGraphQuery(ctx, 0, "kind = special", "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(use_index ? "attribute index" : "full scan");
  state.counters["nodes"] = nodes;
}

BENCHMARK(BM_QueryIndexAblation)
    ->ArgsProduct({{1000, 10000, 50000}, {0, 1}})
    ->ArgNames({"nodes", "index"})
    ->Unit(benchmark::kMicrosecond);

// Write-then-query: each iteration dirties the graph. With incremental
// maintenance the next query applies the staged delta instead of
// rebuilding, so this measures the planner's steady write/read mix.
void BM_QueryIndexWriteHeavy(benchmark::State& state) {
  const bool use_index = state.range(0) != 0;
  bench::ScratchGraph graph(std::string("b3_writeheavy") +
                            (use_index ? "_idx" : "_scan"));
  auto* build_ham = graph.ham();
  auto build_ctx = graph.ctx();
  auto kind = *build_ham->GetAttributeIndex(build_ctx, "kind");
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < 5000; ++i) {
    auto added = build_ham->AddNode(build_ctx, true);
    build_ham->SetNodeAttributeValue(build_ctx, added->node, kind, "plain");
    nodes.push_back(added->node);
  }
  ham::HamOptions options;
  options.sync_commits = false;
  options.use_attribute_index = use_index;
  build_ham->CloseGraph(build_ctx);
  ham::Ham engine(graph.env(), options);
  auto ctx = *engine.OpenGraph(graph.project(), "local", graph.dir());

  size_t i = 0;
  for (auto _ : state) {
    engine.SetNodeAttributeValue(ctx, nodes[i++ % nodes.size()], kind,
                                 "touched");
    auto result = engine.GetGraphQuery(ctx, 0, "kind = special", "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(use_index ? "attribute index (incremental)" : "full scan");
}

BENCHMARK(BM_QueryIndexWriteHeavy)->Arg(0)->Arg(1)->Unit(
    benchmark::kMicrosecond);

// Equality conjunctions over 5000 nodes at three joint selectivities:
// the planner probes a posting list per conjunct and intersects. The
// scan arm (index:0) is the ablation baseline.
void BM_QueryConjunctionSelectivity(benchmark::State& state) {
  const bool use_index = state.range(1) != 0;
  bench::ScratchGraph graph(std::string("b3_conj_") +
                            std::to_string(state.range(0)) +
                            (use_index ? "_idx" : "_scan"));
  auto* build_ham = graph.ham();
  auto build_ctx = graph.ctx();
  auto kind = *build_ham->GetAttributeIndex(build_ctx, "kind");
  auto serial = *build_ham->GetAttributeIndex(build_ctx, "serial");
  for (int i = 0; i < 5000; ++i) {
    auto added = build_ham->AddNode(build_ctx, true);
    build_ham->SetNodeAttributeValue(build_ctx, added->node, kind,
                                     i % 100 == 0 ? "special" : "plain");
    build_ham->SetNodeAttributeValue(build_ctx, added->node, serial,
                                     std::to_string(i % 500));
  }
  ham::HamOptions options;
  options.sync_commits = false;
  options.use_attribute_index = use_index;
  build_ham->CloseGraph(build_ctx);
  ham::Ham engine(graph.env(), options);
  auto ctx = *engine.OpenGraph(graph.project(), "local", graph.dir());

  // 50 x 10-node postings -> 1 survivor; wider second conjunct -> 10.
  const char* predicates[] = {
      "kind = special & serial = 100",  // both selective
      "kind = special & serial < 9999 & serial = 200",  // with residual
  };
  const char* predicate = predicates[state.range(0)];
  for (auto _ : state) {
    auto result = engine.GetGraphQuery(ctx, 0, predicate, "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::string(predicate) +
                 (use_index ? " [intersect]" : " [scan]"));
}

BENCHMARK(BM_QueryConjunctionSelectivity)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"pred", "index"})
    ->Unit(benchmark::kMicrosecond);

// The rebuild cliff: the first query after a write. Before incremental
// maintenance every post-write query paid a full O(nodes) rebuild;
// now it applies the staged delta. The write itself is untimed.
void BM_QueryPostWriteFirstQuery(benchmark::State& state) {
  const int nodes_count = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b3_cliff_" + std::to_string(nodes_count));
  auto* build_ham = graph.ham();
  auto build_ctx = graph.ctx();
  auto kind = *build_ham->GetAttributeIndex(build_ctx, "kind");
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < nodes_count; ++i) {
    auto added = build_ham->AddNode(build_ctx, true);
    build_ham->SetNodeAttributeValue(build_ctx, added->node, kind,
                                     i % 100 == 0 ? "special" : "plain");
    nodes.push_back(added->node);
  }
  ham::HamOptions options;
  options.sync_commits = false;
  build_ham->CloseGraph(build_ctx);
  ham::Ham engine(graph.env(), options);
  auto ctx = *engine.OpenGraph(graph.project(), "local", graph.dir());
  // Prime the index so only the per-write maintenance is measured.
  (void)engine.GetGraphQuery(ctx, 0, "kind = special", "", {}, {});

  size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    engine.SetNodeAttributeValue(ctx, nodes[i++ % nodes.size()], kind,
                                 "touched");
    state.ResumeTiming();
    auto result = engine.GetGraphQuery(ctx, 0, "kind = special", "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = nodes_count;
}

BENCHMARK(BM_QueryPostWriteFirstQuery)
    ->Arg(5000)
    ->Arg(20000)
    ->ArgNames({"nodes"})
    ->Unit(benchmark::kMicrosecond);

// getAttributeValues: the value-set scan behind the document browser.
void BM_GetAttributeValues(benchmark::State& state) {
  QueryFixture fixture(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    auto values = fixture.graph.ham()->GetAttributeValues(
        fixture.graph.ctx(), fixture.serial, 0);
    benchmark::DoNotOptimize(values);
  }
}

BENCHMARK(BM_GetAttributeValues)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

// Experiment B6 — the client/server deployment: "a central server
// which is accessible over a local area network ... the user interface
// process communicates with the HAM using a remote procedure call
// mechanism" (paper §2.2/§4.1).
//
// Measures per-operation round-trip cost of the RPC layer (loopback
// TCP) against the same operations on the in-process engine, and how
// batched queries amortize the per-call overhead.
//
// Expected shape: a fixed per-call overhead (framing + syscalls +
// loopback) of tens of microseconds dominates small ops; large reads
// approach memcpy bandwidth; one big linearizeGraph beats N small
// openNode calls by ~N x the per-call overhead.

#include <benchmark/benchmark.h>

#include <deque>

#include "bench/bench_util.h"
#include "common/coding.h"
#include "common/trace.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace {

// A server + connected client + one populated graph, built once.
struct RpcFixture {
  RpcFixture() : graph("b6_rpc") {
    server = std::make_unique<rpc::Server>(graph.ham());
    port = *server->Start(0);
    client = std::move(*rpc::RemoteHam::Connect("localhost", port));
    rpc::RemoteHam::Options pipeline_options;
    pipeline_options.pipeline = true;
    // Room for 8 bench threads with an 8-deep window each.
    pipeline_options.max_inflight = 128;
    pipelined = std::move(
        *rpc::RemoteHam::Connect("localhost", port, pipeline_options));
    remote_ctx =
        *client->OpenGraph(graph.project(), "localhost", graph.dir());
    // A chain of 100 nodes with contents for traversal benches.
    ham::NodeIndex prev = 0;
    for (int i = 0; i < 100; ++i) {
      ham::NodeIndex n = graph.MakeNode("node contents " + std::to_string(i));
      nodes.push_back(n);
      if (prev != 0) {
        graph.ham()->AddLink(graph.ctx(), ham::LinkPt{prev, 0, 0, true},
                             ham::LinkPt{n, 0, 0, true});
      }
      prev = n;
    }
    big_node = graph.MakeNode(std::string(1 << 20, 'x'));
  }

  ~RpcFixture() {
    pipelined.reset();
    client.reset();
    server->Stop();
  }

  bench::ScratchGraph graph;
  std::unique_ptr<rpc::Server> server;
  uint16_t port = 0;
  std::unique_ptr<rpc::RemoteHam> client;
  std::unique_ptr<rpc::RemoteHam> pipelined;
  ham::Context remote_ctx;
  std::vector<ham::NodeIndex> nodes;
  ham::NodeIndex big_node = 0;
};

RpcFixture* Fixture() {
  static RpcFixture* fixture = new RpcFixture();
  return fixture;
}

void BM_OpenNodeLocal(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->graph.ham()->OpenNode(f->graph.ctx(), f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
}

void BM_OpenNodeRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
}

BENCHMARK(BM_OpenNodeLocal)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OpenNodeRemote)->Unit(benchmark::kMicrosecond);

void BM_PingRoundTrip(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->client->Ping());
  }
}

BENCHMARK(BM_PingRoundTrip)->Unit(benchmark::kMicrosecond);

// Pipelining (PR 6). The acceptance pair: 8 threads sharing ONE
// connection. The classic client admits a single request in flight
// (its mutex covers send + recv), so 8 threads serialize — that is the
// one-in-flight baseline. The pipelined client tags requests with ids
// and completes them out of order, so all 8 ride the wire at once.
void BM_OpenNodeRemoteShared1InFlight(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_OpenNodeRemoteSharedPipelined(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->pipelined->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_OpenNodeRemoteShared1InFlight)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OpenNodeRemoteSharedPipelined)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// One thread keeping a window of N async openNode calls in flight —
// pipelining without any client-side thread fan-out. The window depth
// is the argument; 8 matches the acceptance setup of 8 concurrent
// requests on one connection.
void BM_OpenNodeRemotePipelinedWindow(benchmark::State& state) {
  RpcFixture* f = Fixture();
  const size_t depth = static_cast<size_t>(state.range(0));
  std::string args;
  PutVarint64(&args, f->remote_ctx.session);
  PutVarint64(&args, f->nodes[0]);
  PutVarint64(&args, 0);                  // time
  rpc::EncodeIndexVecTo({}, &args);       // no attributes
  std::deque<rpc::RemoteHam::PendingCall> window;
  for (auto _ : state) {
    while (window.size() < depth) {
      window.push_back(f->pipelined->CallAsync(rpc::Method::kOpenNode, args));
    }
    auto reply = window.front().Wait();
    window.pop_front();
    benchmark::DoNotOptimize(reply);
  }
  while (!window.empty()) {
    window.front().Wait();
    window.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_OpenNodeRemotePipelinedWindow)
    ->Arg(8)
    ->Arg(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// The full acceptance shape: 8 concurrent clients, each keeping its
// own 8-deep window of async openNode calls on the ONE shared
// pipelined connection. Compare with the same 8 threads on the
// one-in-flight client above.
void BM_OpenNodeRemoteSharedPipelinedWindow8(benchmark::State& state) {
  RpcFixture* f = Fixture();
  std::string args;
  PutVarint64(&args, f->remote_ctx.session);
  PutVarint64(&args, f->nodes[0]);
  PutVarint64(&args, 0);                  // time
  rpc::EncodeIndexVecTo({}, &args);       // no attributes
  std::deque<rpc::RemoteHam::PendingCall> window;
  for (auto _ : state) {
    while (window.size() < 8) {
      window.push_back(f->pipelined->CallAsync(rpc::Method::kOpenNode, args));
    }
    auto reply = window.front().Wait();
    window.pop_front();
    benchmark::DoNotOptimize(reply);
  }
  while (!window.empty()) {
    window.front().Wait();
    window.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_OpenNodeRemoteSharedPipelinedWindow8)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Tracing cost. The plain remote benches above run with tracing
// disabled (trace_sample_n = 0, the default) — the disabled path is a
// single relaxed atomic load per would-be span. These variants turn on
// sampling around the same remote openNode so BENCH json carries the
// traced-vs-untraced comparison directly: _Traced records every
// request (client span + server span + op/lock/reconstruct children),
// _Sampled1in64 is the recommended production setting.
void BM_OpenNodeRemoteTraced(benchmark::State& state) {
  RpcFixture* f = Fixture();
  Tracer::Instance().Configure(/*sample_n=*/1, /*slow_us=*/0);
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  Tracer::Instance().Configure(0, 0);
}

void BM_OpenNodeRemoteSampled1in64(benchmark::State& state) {
  RpcFixture* f = Fixture();
  Tracer::Instance().Configure(/*sample_n=*/64, /*slow_us=*/0);
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  Tracer::Instance().Configure(0, 0);
}

BENCHMARK(BM_OpenNodeRemoteTraced)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OpenNodeRemoteSampled1in64)->Unit(benchmark::kMicrosecond);

void BM_LargeReadRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->big_node, 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          (1 << 20));
}

BENCHMARK(BM_LargeReadRemote)->Unit(benchmark::kMicrosecond);

void BM_ModifyNodeRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  auto added = f->client->AddNode(f->remote_ctx, true);
  ham::Time expected = added->creation_time;
  uint64_t i = 0;
  for (auto _ : state) {
    f->client->ModifyNode(f->remote_ctx, added->node, expected,
                          "edit " + std::to_string(i++), {}, "");
    expected = *f->client->GetNodeTimeStamp(f->remote_ctx, added->node);
  }
}

BENCHMARK(BM_ModifyNodeRemote)->Unit(benchmark::kMicrosecond);

// The amortization comparison: fetch 100 nodes one by one vs one
// linearizeGraph returning the whole chain.
void BM_ChainFetchPerNodeRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    for (ham::NodeIndex n : f->nodes) {
      auto opened = f->client->OpenNode(f->remote_ctx, n, 0, {});
      benchmark::DoNotOptimize(opened);
    }
  }
  state.counters["nodes"] = static_cast<double>(f->nodes.size());
}

void BM_ChainFetchBatchedRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto result = f->client->LinearizeGraph(f->remote_ctx, f->nodes[0], 0, "",
                                            "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = static_cast<double>(f->nodes.size());
}

// The batch wire ops (PR 6): the same 100-node fetch as one openNodes
// call, and structure + contents in one linearizeAndFetch round trip.
void BM_ChainFetchOpenNodesBatch(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto batch = f->client->OpenNodes(f->remote_ctx, f->nodes, 0, {});
    benchmark::DoNotOptimize(batch);
  }
  state.counters["nodes"] = static_cast<double>(f->nodes.size());
}

void BM_LinearizeAndFetchRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto result = f->client->LinearizeAndFetch(f->remote_ctx, f->nodes[0], 0,
                                               "", "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = static_cast<double>(f->nodes.size());
}

BENCHMARK(BM_ChainFetchPerNodeRemote)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChainFetchBatchedRemote)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChainFetchOpenNodesBatch)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LinearizeAndFetchRemote)->Unit(benchmark::kMicrosecond);

void BM_TransactionRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  const int ops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    f->client->BeginTransaction(f->remote_ctx);
    for (int i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(f->client->AddNode(f->remote_ctx, true));
    }
    f->client->CommitTransaction(f->remote_ctx);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}

BENCHMARK(BM_TransactionRemote)->Arg(1)->Arg(10)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

// Experiment B6 — the client/server deployment: "a central server
// which is accessible over a local area network ... the user interface
// process communicates with the HAM using a remote procedure call
// mechanism" (paper §2.2/§4.1).
//
// Measures per-operation round-trip cost of the RPC layer (loopback
// TCP) against the same operations on the in-process engine, and how
// batched queries amortize the per-call overhead.
//
// Expected shape: a fixed per-call overhead (framing + syscalls +
// loopback) of tens of microseconds dominates small ops; large reads
// approach memcpy bandwidth; one big linearizeGraph beats N small
// openNode calls by ~N x the per-call overhead.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/trace.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace {

// A server + connected client + one populated graph, built once.
struct RpcFixture {
  RpcFixture() : graph("b6_rpc") {
    server = std::make_unique<rpc::Server>(graph.ham());
    port = *server->Start(0);
    client = std::move(*rpc::RemoteHam::Connect("localhost", port));
    remote_ctx =
        *client->OpenGraph(graph.project(), "localhost", graph.dir());
    // A chain of 100 nodes with contents for traversal benches.
    ham::NodeIndex prev = 0;
    for (int i = 0; i < 100; ++i) {
      ham::NodeIndex n = graph.MakeNode("node contents " + std::to_string(i));
      nodes.push_back(n);
      if (prev != 0) {
        graph.ham()->AddLink(graph.ctx(), ham::LinkPt{prev, 0, 0, true},
                             ham::LinkPt{n, 0, 0, true});
      }
      prev = n;
    }
    big_node = graph.MakeNode(std::string(1 << 20, 'x'));
  }

  ~RpcFixture() {
    client.reset();
    server->Stop();
  }

  bench::ScratchGraph graph;
  std::unique_ptr<rpc::Server> server;
  uint16_t port = 0;
  std::unique_ptr<rpc::RemoteHam> client;
  ham::Context remote_ctx;
  std::vector<ham::NodeIndex> nodes;
  ham::NodeIndex big_node = 0;
};

RpcFixture* Fixture() {
  static RpcFixture* fixture = new RpcFixture();
  return fixture;
}

void BM_OpenNodeLocal(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->graph.ham()->OpenNode(f->graph.ctx(), f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
}

void BM_OpenNodeRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
}

BENCHMARK(BM_OpenNodeLocal)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OpenNodeRemote)->Unit(benchmark::kMicrosecond);

void BM_PingRoundTrip(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->client->Ping());
  }
}

BENCHMARK(BM_PingRoundTrip)->Unit(benchmark::kMicrosecond);

// Tracing cost. The plain remote benches above run with tracing
// disabled (trace_sample_n = 0, the default) — the disabled path is a
// single relaxed atomic load per would-be span. These variants turn on
// sampling around the same remote openNode so BENCH json carries the
// traced-vs-untraced comparison directly: _Traced records every
// request (client span + server span + op/lock/reconstruct children),
// _Sampled1in64 is the recommended production setting.
void BM_OpenNodeRemoteTraced(benchmark::State& state) {
  RpcFixture* f = Fixture();
  Tracer::Instance().Configure(/*sample_n=*/1, /*slow_us=*/0);
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  Tracer::Instance().Configure(0, 0);
}

void BM_OpenNodeRemoteSampled1in64(benchmark::State& state) {
  RpcFixture* f = Fixture();
  Tracer::Instance().Configure(/*sample_n=*/64, /*slow_us=*/0);
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->nodes[0], 0, {});
    benchmark::DoNotOptimize(opened);
  }
  Tracer::Instance().Configure(0, 0);
}

BENCHMARK(BM_OpenNodeRemoteTraced)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OpenNodeRemoteSampled1in64)->Unit(benchmark::kMicrosecond);

void BM_LargeReadRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto opened = f->client->OpenNode(f->remote_ctx, f->big_node, 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          (1 << 20));
}

BENCHMARK(BM_LargeReadRemote)->Unit(benchmark::kMicrosecond);

void BM_ModifyNodeRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  auto added = f->client->AddNode(f->remote_ctx, true);
  ham::Time expected = added->creation_time;
  uint64_t i = 0;
  for (auto _ : state) {
    f->client->ModifyNode(f->remote_ctx, added->node, expected,
                          "edit " + std::to_string(i++), {}, "");
    expected = *f->client->GetNodeTimeStamp(f->remote_ctx, added->node);
  }
}

BENCHMARK(BM_ModifyNodeRemote)->Unit(benchmark::kMicrosecond);

// The amortization comparison: fetch 100 nodes one by one vs one
// linearizeGraph returning the whole chain.
void BM_ChainFetchPerNodeRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    for (ham::NodeIndex n : f->nodes) {
      auto opened = f->client->OpenNode(f->remote_ctx, n, 0, {});
      benchmark::DoNotOptimize(opened);
    }
  }
  state.counters["nodes"] = static_cast<double>(f->nodes.size());
}

void BM_ChainFetchBatchedRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  for (auto _ : state) {
    auto result = f->client->LinearizeGraph(f->remote_ctx, f->nodes[0], 0, "",
                                            "", {}, {});
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = static_cast<double>(f->nodes.size());
}

BENCHMARK(BM_ChainFetchPerNodeRemote)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChainFetchBatchedRemote)->Unit(benchmark::kMicrosecond);

void BM_TransactionRemote(benchmark::State& state) {
  RpcFixture* f = Fixture();
  const int ops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    f->client->BeginTransaction(f->remote_ctx);
    for (int i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(f->client->AddNode(f->remote_ctx, true));
    }
    f->client->CommitTransaction(f->remote_ctx);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}

BENCHMARK(BM_TransactionRemote)->Arg(1)->Arg(10)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

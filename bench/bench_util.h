// Shared helpers for the Neptune benchmark suite (experiments B1–B8 in
// EXPERIMENTS.md). Each bench binary regenerates one experiment's rows.

#ifndef NEPTUNE_BENCH_BENCH_UTIL_H_
#define NEPTUNE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/random.h"
#include "ham/ham.h"

namespace neptune {
namespace bench {

// A scratch graph database living for one benchmark run.
class ScratchGraph {
 public:
  explicit ScratchGraph(const std::string& tag, bool sync_commits = false) {
    env_ = Env::Default();
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_bench_" + tag + "_" + std::to_string(::getpid())))
               .string();
    env_->RemoveDirRecursive(dir_);
    ham::HamOptions options;
    options.sync_commits = sync_commits;
    options.checkpoint_wal_bytes = 1ull << 40;  // benches control rotation
    ham_ = std::make_unique<ham::Ham>(env_, options);
    auto created = ham_->CreateGraph(dir_, 0755);
    project_ = created.ok() ? created->project : 0;
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ctx_ = ctx.ok() ? *ctx : ham::Context{};
  }

  ~ScratchGraph() {
    ham_.reset();
    env_->RemoveDirRecursive(dir_);
  }

  ham::Ham* ham() { return ham_.get(); }
  ham::Context ctx() const { return ctx_; }
  ham::ProjectId project() const { return project_; }
  const std::string& dir() const { return dir_; }
  Env* env() { return env_; }

  // An archive node holding `text`.
  ham::NodeIndex MakeNode(const std::string& text) {
    auto added = ham_->AddNode(ctx_, true);
    ham_->ModifyNode(ctx_, added->node, added->creation_time, text, {},
                     "init");
    return added->node;
  }

 private:
  Env* env_ = nullptr;
  std::string dir_;
  std::unique_ptr<ham::Ham> ham_;
  ham::ProjectId project_ = 0;
  ham::Context ctx_;
};

// Applies a small random edit (insert/delete/overwrite) to `text`.
inline void RandomEdit(Random* rng, std::string* text, size_t edit_size) {
  if (text->empty()) {
    *text = rng->NextString(edit_size);
    return;
  }
  switch (rng->Uniform(3)) {
    case 0:
      text->insert(rng->Uniform(text->size()), rng->NextString(edit_size));
      break;
    case 1: {
      size_t pos = rng->Uniform(text->size());
      text->erase(pos, std::min(edit_size, text->size() - pos));
      break;
    }
    default: {
      size_t pos = rng->Uniform(text->size());
      size_t len = std::min(edit_size, text->size() - pos);
      for (size_t i = 0; i < len; ++i) {
        (*text)[pos + i] = static_cast<char>('a' + rng->Uniform(26));
      }
      break;
    }
  }
}

}  // namespace bench
}  // namespace neptune

#endif  // NEPTUNE_BENCH_BENCH_UTIL_H_

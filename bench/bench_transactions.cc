// Experiment B5 — "it is transaction-oriented and provides for
// complete recovery from any aborted transaction" (paper §2.2).
//
// Measures commit throughput (fsync on/off, varying ops per
// transaction), abort cost, and recovery time (snapshot load + WAL
// replay) as a function of log length.
//
// Expected shape: synced commits are dominated by fsync latency, so
// batching ops per transaction amortizes it near-linearly; abort is
// O(1); recovery time grows linearly with WAL length and drops to
// near-zero after a checkpoint.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace neptune {
namespace {

// Args: {ops_per_txn}; capture: sync.
void BM_CommitThroughput(benchmark::State& state, bool sync) {
  const int ops = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b5_commit", sync);
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  for (auto _ : state) {
    ham->BeginTransaction(ctx);
    for (int i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(ham->AddNode(ctx, true));
    }
    ham->CommitTransaction(ctx);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}

BENCHMARK_CAPTURE(BM_CommitThroughput, fsync, true)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CommitThroughput, nosync, false)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// Abort cost vs staged-transaction size: "complete recovery from any
// aborted transaction" should be O(dropping the overlay).
void BM_AbortCost(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b5_abort");
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  for (auto _ : state) {
    state.PauseTiming();
    ham->BeginTransaction(ctx);
    for (int i = 0; i < ops; ++i) ham->AddNode(ctx, true);
    state.ResumeTiming();
    ham->AbortTransaction(ctx);
  }
}

BENCHMARK(BM_AbortCost)->Arg(1)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

// Recovery: reopen a graph whose WAL holds `txns` committed
// transactions on top of the snapshot.
void BM_RecoveryTime(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const bool checkpointed = state.range(1) != 0;
  bench::ScratchGraph graph("b5_recover_" + std::to_string(txns) +
                            (checkpointed ? "_cp" : ""));
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  for (int i = 0; i < txns; ++i) {
    auto added = ham->AddNode(ctx, true);
    ham->ModifyNode(ctx, added->node, added->creation_time,
                    "contents " + std::to_string(i), {}, "");
  }
  if (checkpointed) ham->Checkpoint(ctx);
  const auto project = graph.project();
  const auto dir = graph.dir();
  ham->CloseGraph(ctx);

  for (auto _ : state) {
    // A fresh engine must re-run recovery from disk.
    ham::HamOptions options;
    options.sync_commits = false;
    ham::Ham fresh(graph.env(), options);
    auto opened = fresh.OpenGraph(project, "local", dir);
    benchmark::DoNotOptimize(opened);
    fresh.CloseGraph(*opened);
  }
  state.counters["wal_txns"] = checkpointed ? 0 : txns;
}

BENCHMARK(BM_RecoveryTime)
    ->ArgsProduct({{100, 1000, 5000}, {0, 1}})
    ->ArgNames({"txns", "checkpointed"})
    ->Unit(benchmark::kMillisecond);

// Checkpoint cost vs graph size.
void BM_CheckpointCost(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b5_checkpoint");
  auto* ham = graph.ham();
  auto ctx = graph.ctx();
  for (int i = 0; i < nodes; ++i) {
    graph.MakeNode("node contents " + std::to_string(i));
  }
  for (auto _ : state) {
    ham->Checkpoint(ctx);
  }
  state.counters["nodes"] = nodes;
}

BENCHMARK(BM_CheckpointCost)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

// Experiment B4 — linearizeGraph: "starts at a designated node and
// follows a depth-first traversal of out-links ordered by the links'
// offsets within the node" (paper §3, Appendix A.1). This is the
// operation behind document browsers and hardcopy extraction.
//
// Sweeps tree size and branching factor, with and without predicates.
//
// Expected shape: linear in the number of visited nodes + links;
// predicate pruning cuts cost proportionally to the pruned subtree.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace neptune {
namespace {

// A complete `fanout`-ary tree with `levels` levels, isPartOf links
// ordered by offset; half of each level's nodes are tagged prunable.
struct TreeFixture {
  TreeFixture(int fanout, int levels)
      : graph("b4_tree_" + std::to_string(fanout) + "_" +
              std::to_string(levels)) {
    auto* ham = graph.ham();
    auto ctx = graph.ctx();
    tag = *ham->GetAttributeIndex(ctx, "tag");
    root = graph.MakeNode("root");
    std::vector<ham::NodeIndex> frontier{root};
    total = 1;
    for (int level = 1; level < levels; ++level) {
      std::vector<ham::NodeIndex> next;
      for (ham::NodeIndex parent : frontier) {
        for (int c = 0; c < fanout; ++c) {
          auto child = ham->AddNode(ctx, true);
          ham->AddLink(ctx,
                       ham::LinkPt{parent, static_cast<uint64_t>(c), 0, true},
                       ham::LinkPt{child->node, 0, 0, true});
          ham->SetNodeAttributeValue(ctx, child->node, tag,
                                     c % 2 == 0 ? "keep" : "prune");
          next.push_back(child->node);
          ++total;
        }
      }
      frontier = std::move(next);
    }
  }

  bench::ScratchGraph graph;
  ham::AttributeIndex tag = 0;
  ham::NodeIndex root = 0;
  size_t total = 0;
};

// Args: {fanout, levels}.
void BM_LinearizeFullTree(benchmark::State& state) {
  TreeFixture fixture(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  size_t visited = 0;
  for (auto _ : state) {
    auto result = fixture.graph.ham()->LinearizeGraph(
        fixture.graph.ctx(), fixture.root, 0, "", "", {}, {});
    visited = result->nodes.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes_visited"] = static_cast<double>(visited);
  state.counters["nodes_total"] = static_cast<double>(fixture.total);
}

BENCHMARK(BM_LinearizeFullTree)
    ->Args({2, 8})    // 255 nodes
    ->Args({4, 6})    // 1365 nodes
    ->Args({10, 4})   // 1111 nodes
    ->Args({2, 12})   // 4095 nodes
    ->ArgNames({"fanout", "levels"})
    ->Unit(benchmark::kMicrosecond);

// Predicate pruning: nodes tagged "prune" (and their subtrees) drop
// out of the traversal.
void BM_LinearizeWithPruning(benchmark::State& state) {
  static TreeFixture* fixture = new TreeFixture(2, 12);
  const bool prune = state.range(0) != 0;
  const char* predicate = prune ? "!(tag = prune)" : "";
  size_t visited = 0;
  for (auto _ : state) {
    auto result = fixture->graph.ham()->LinearizeGraph(
        fixture->graph.ctx(), fixture->root, 0, predicate, "", {}, {});
    visited = result->nodes.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes_visited"] = static_cast<double>(visited);
  state.SetLabel(prune ? "pruned" : "full");
}

BENCHMARK(BM_LinearizeWithPruning)->Arg(0)->Arg(1)->Unit(
    benchmark::kMicrosecond);

// Attribute projection cost: asking linearizeGraph to also return m
// attribute values per node (the document browser asks for icon).
void BM_LinearizeWithProjection(benchmark::State& state) {
  static TreeFixture* fixture = new TreeFixture(4, 6);
  const int m = static_cast<int>(state.range(0));
  std::vector<ham::AttributeIndex> attrs;
  for (int i = 0; i < m; ++i) attrs.push_back(fixture->tag);
  for (auto _ : state) {
    auto result = fixture->graph.ham()->LinearizeGraph(
        fixture->graph.ctx(), fixture->root, 0, "", "", attrs, {});
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_LinearizeWithProjection)->Arg(0)->Arg(1)->Arg(4)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

// Experiment B2 — "provides rapid access to any version of a
// hypergraph" (paper §3).
//
// Measures openNode latency as a function of version depth (how far
// back from the current version) for the backward-delta and full-copy
// representations.
//
// Expected shape: the current version is O(1) for both; with backward
// deltas, cost grows linearly with depth (each step applies one
// delta); full-copy stays flat but pays its storage price (B1). The
// design bet of §3 is that recent versions — the common case — are the
// cheapest.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "delta/recon_cache.h"
#include "delta/version_chain.h"

namespace neptune {
namespace {

using delta::ChainMode;
using delta::VersionChain;

// Repeated Get() of the same version would otherwise be served by the
// process-global reconstruction cache after the first iteration,
// hiding the delta-walk cost these benchmarks measure.
class ScopedCacheOff {
 public:
  ScopedCacheOff()
      : saved_(delta::ReconstructionCache::Instance().capacity_bytes()) {
    delta::ReconstructionCache::Instance().set_capacity_bytes(0);
  }
  ~ScopedCacheOff() {
    delta::ReconstructionCache::Instance().set_capacity_bytes(saved_);
  }

 private:
  size_t saved_;
};

// Args: {total_versions, depth_from_current}.
void BM_ChainGetAtDepth(benchmark::State& state, ChainMode mode) {
  const int versions = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  ScopedCacheOff cache_off;
  Random rng(3);
  std::string text = rng.NextString(16 << 10);
  VersionChain chain(mode);
  std::vector<uint64_t> times;
  uint64_t t = 0;
  for (int v = 0; v < versions; ++v) {
    bench::RandomEdit(&rng, &text, 64);
    chain.Append(++t, text, "");
    times.push_back(t);
  }
  const uint64_t target = times[times.size() - 1 - depth];
  for (auto _ : state) {
    auto contents = chain.Get(target);
    benchmark::DoNotOptimize(contents);
  }
  state.counters["depth"] = depth;
}

void DepthArgs(benchmark::internal::Benchmark* b) {
  for (int depth : {0, 1, 10, 100, 499}) {
    b->Args({500, depth});
  }
}

BENCHMARK_CAPTURE(BM_ChainGetAtDepth, backward_delta,
                  ChainMode::kBackwardDelta)
    ->Apply(DepthArgs);
BENCHMARK_CAPTURE(BM_ChainGetAtDepth, full_copy, ChainMode::kFullCopy)
    ->Apply(DepthArgs);
// The ablation that justifies RCS-style backward deltas: with forward
// (SCCS-style) deltas the CURRENT version is the expensive one.
BENCHMARK_CAPTURE(BM_ChainGetAtDepth, forward_delta,
                  ChainMode::kForwardDelta)
    ->Apply(DepthArgs);

// Keyframe ablation: reading the OLDEST version of a deep backward
// chain is the worst case (the walk starts at the current version).
// With a keyframe every K versions the walk is bounded by K delta
// applies regardless of chain length; with keyframes off it applies
// one delta per version of depth. Arg: keyframe interval (0 = off).
void BM_ChainGetOldestKeyframeAblation(benchmark::State& state) {
  const int versions = 256;
  const uint32_t interval = static_cast<uint32_t>(state.range(0));
  ScopedCacheOff cache_off;
  Random rng(3);
  std::string text = rng.NextString(16 << 10);
  VersionChain chain(ChainMode::kBackwardDelta);
  chain.set_keyframe_interval(interval);
  uint64_t t = 0;
  uint64_t oldest = 0;
  for (int v = 0; v < versions; ++v) {
    bench::RandomEdit(&rng, &text, 64);
    chain.Append(++t, text, "");
    if (v == 0) oldest = t;
  }
  for (auto _ : state) {
    auto contents = chain.Get(oldest);
    benchmark::DoNotOptimize(contents);
  }
  state.counters["keyframe_interval"] = interval;
  state.counters["stored_bytes"] =
      static_cast<double>(chain.StoredBytes());
}

BENCHMARK(BM_ChainGetOldestKeyframeAblation)->Arg(0)->Arg(16);

// The cache path the ablation above deliberately bypasses: repeated
// reads of the same historical version are served from the
// reconstruction cache without applying any deltas.
void BM_ChainGetOldestCached(benchmark::State& state) {
  const int versions = 256;
  Random rng(3);
  std::string text = rng.NextString(16 << 10);
  VersionChain chain(ChainMode::kBackwardDelta);
  uint64_t t = 0;
  uint64_t oldest = 0;
  for (int v = 0; v < versions; ++v) {
    bench::RandomEdit(&rng, &text, 64);
    chain.Append(++t, text, "");
    if (v == 0) oldest = t;
  }
  delta::ReconstructionCache::Instance().Clear();
  for (auto _ : state) {
    auto contents = chain.Get(oldest);
    benchmark::DoNotOptimize(contents);
  }
}

BENCHMARK(BM_ChainGetOldestCached);

// The same sweep through the full HAM: openNode at a historical time.
void BM_HamOpenNodeAtDepth(benchmark::State& state) {
  const int versions = 200;
  const int depth = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b2_open");
  // After graph construction: the Ham constructor sets the cache
  // capacity from its options, which would undo an earlier override.
  ScopedCacheOff cache_off;  // measure the walk (bounded by keyframes)
  Random rng(5);
  std::string text = rng.NextString(16 << 10);
  auto added = graph.ham()->AddNode(graph.ctx(), true);
  ham::Time expected = added->creation_time;
  std::vector<ham::Time> times;
  for (int v = 0; v < versions; ++v) {
    bench::RandomEdit(&rng, &text, 64);
    graph.ham()->ModifyNode(graph.ctx(), added->node, expected, text, {}, "");
    expected = *graph.ham()->GetNodeTimeStamp(graph.ctx(), added->node);
    times.push_back(expected);
  }
  const ham::Time target = times[times.size() - 1 - depth];
  for (auto _ : state) {
    auto opened = graph.ham()->OpenNode(graph.ctx(), added->node, target, {});
    benchmark::DoNotOptimize(opened);
  }
  state.counters["depth"] = depth;
}

BENCHMARK(BM_HamOpenNodeAtDepth)->Arg(0)->Arg(10)->Arg(100)->Arg(199);

// getNodeDifferences between two versions `gap` apart.
void BM_HamNodeDifferences(benchmark::State& state) {
  const int gap = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b2_diff");
  Random rng(9);
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "line " + std::to_string(i) + " of the document\n";
  }
  auto added = graph.ham()->AddNode(graph.ctx(), true);
  ham::Time expected = added->creation_time;
  std::vector<ham::Time> times;
  for (int v = 0; v < 100; ++v) {
    text += "appended line " + std::to_string(v) + "\n";
    graph.ham()->ModifyNode(graph.ctx(), added->node, expected, text, {}, "");
    expected = *graph.ham()->GetNodeTimeStamp(graph.ctx(), added->node);
    times.push_back(expected);
  }
  for (auto _ : state) {
    auto diffs = graph.ham()->GetNodeDifferences(
        graph.ctx(), added->node, times[times.size() - 1 - gap],
        times.back());
    benchmark::DoNotOptimize(diffs);
  }
}

BENCHMARK(BM_HamNodeDifferences)->Arg(1)->Arg(10)->Arg(99);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();

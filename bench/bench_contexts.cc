// Experiment B8 — the §5 contexts extension: "a scheme for multiple
// version threads that allows multiple simultaneous contexts to exist
// in a given Neptune database" with merge back into the main design.
//
// Measures branch creation, the copy-on-write cost of the first write
// in a branch, read overhead through a branch overlay, and merge cost
// vs divergence (number of records touched in the branch).
//
// Expected shape: branch creation is O(1) (no copying); branch writes
// pay one record copy each (copy-on-write); merge is linear in the
// branch's dirty set, not in graph size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace neptune {
namespace {

void BM_CreateContext(benchmark::State& state) {
  const int base_nodes = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b8_create");
  for (int i = 0; i < base_nodes; ++i) graph.MakeNode("n");
  auto* ham = graph.ham();
  uint64_t i = 0;
  for (auto _ : state) {
    auto info = ham->CreateContext(graph.ctx(), "w" + std::to_string(i++));
    benchmark::DoNotOptimize(info);
  }
  state.counters["base_nodes"] = base_nodes;
}

BENCHMARK(BM_CreateContext)->Arg(10)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

// First write to a base record inside a branch: pays the COW copy.
void BM_BranchFirstWrite(benchmark::State& state) {
  const int contents_bytes = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b8_cow");
  auto* ham = graph.ham();
  Random rng(1);
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < 2000; ++i) {
    nodes.push_back(graph.MakeNode(
        rng.NextString(static_cast<size_t>(contents_bytes))));
  }
  auto info = ham->CreateContext(graph.ctx(), "cow");
  auto branch = *ham->OpenContext(graph.ctx(), info->thread);
  size_t i = 0;
  for (auto _ : state) {
    if (i >= nodes.size()) {
      state.SkipWithError("fixture exhausted; raise node count");
      break;
    }
    const ham::NodeIndex n = nodes[i++];
    auto ts = ham->GetNodeTimeStamp(branch, n);
    ham->ModifyNode(branch, n, *ts, "branch edit", {}, "");
  }
}

BENCHMARK(BM_BranchFirstWrite)
    ->Arg(256)
    ->Arg(16 << 10)
    ->Iterations(1000)
    ->Unit(benchmark::kMicrosecond);

// Reads through a branch overlay vs reads on the main thread.
void BM_ReadThroughOverlay(benchmark::State& state) {
  const bool through_branch = state.range(0) != 0;
  bench::ScratchGraph graph("b8_read");
  auto* ham = graph.ham();
  ham::NodeIndex node = graph.MakeNode("contents");
  ham::Context ctx = graph.ctx();
  if (through_branch) {
    auto info = ham->CreateContext(graph.ctx(), "reader");
    ctx = *ham->OpenContext(graph.ctx(), info->thread);
    // Touch a different node so the overlay is non-empty.
    ham::NodeIndex other = graph.MakeNode("other");
    auto ts = ham->GetNodeTimeStamp(ctx, other);
    ham->ModifyNode(ctx, other, *ts, "dirty", {}, "");
  }
  for (auto _ : state) {
    auto opened = ham->OpenNode(ctx, node, 0, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetLabel(through_branch ? "via branch overlay" : "main thread");
}

BENCHMARK(BM_ReadThroughOverlay)->Arg(0)->Arg(1)->Unit(
    benchmark::kMicrosecond);

// Merge cost vs number of records dirtied in the branch.
void BM_MergeContext(benchmark::State& state) {
  const int dirty = static_cast<int>(state.range(0));
  bench::ScratchGraph graph("b8_merge");
  auto* ham = graph.ham();
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < dirty; ++i) {
    nodes.push_back(graph.MakeNode("base " + std::to_string(i)));
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto info = ham->CreateContext(graph.ctx(), "m");
    auto branch = *ham->OpenContext(graph.ctx(), info->thread);
    for (ham::NodeIndex n : nodes) {
      auto ts = ham->GetNodeTimeStamp(branch, n);
      ham->ModifyNode(branch, n, *ts, "branched edit", {}, "");
    }
    state.ResumeTiming();
    ham->MergeContext(graph.ctx(), info->thread, false);
    state.PauseTiming();
    ham->CloseGraph(branch);
    state.ResumeTiming();
  }
  state.counters["dirty_records"] = dirty;
}

BENCHMARK(BM_MergeContext)->Arg(1)->Arg(10)->Arg(100)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace neptune

BENCHMARK_MAIN();
